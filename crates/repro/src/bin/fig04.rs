//! Figure 4: training throughput vs. batch size — (a) ResNet-50 saturates
//! once the GPU compute units fill; (b) NMT keeps scaling linearly until
//! it hits the 12 GB memory capacity wall.

use echo_device::DeviceSpec;
use echo_models::resnet::resnet50_throughput;
use echo_repro::{gib, print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let spec = DeviceSpec::titan_xp();

    // (a) ResNet-50.
    let mut rows_a = Vec::new();
    let mut json_a = Vec::new();
    for batch in [8usize, 16, 32, 64, 128, 256] {
        let thpt = resnet50_throughput(batch, &spec);
        rows_a.push(vec![batch.to_string(), format!("{thpt:.0}")]);
        json_a.push(json!({"batch": batch, "throughput": thpt}));
    }
    print_table(
        "Figure 4(a): ResNet-50 training throughput vs batch size (Titan Xp)",
        &["batch", "images/s"],
        &rows_a,
    );

    // (b) NMT.
    let mut rows_b = Vec::new();
    let mut json_b = Vec::new();
    for batch in [16usize, 32, 64, 128, 256] {
        let cfg = NmtRunConfig::zhu(format!("B={batch}"), LstmBackend::Default, batch, false);
        let r = run_nmt(&cfg).expect("nmt run");
        rows_b.push(vec![
            batch.to_string(),
            format!("{:.0}", r.throughput),
            gib(r.nvidia_smi_bytes),
            if r.oom { "OOM (estimated)" } else { "fits" }.to_string(),
        ]);
        json_b.push(json!({
            "batch": batch,
            "throughput": r.throughput,
            "memory_bytes": r.nvidia_smi_bytes,
            "oom": r.oom,
        }));
    }
    print_table(
        "Figure 4(b): NMT training throughput and memory vs batch size (Titan Xp, 12 GB)",
        &["batch", "samples/s", "memory GiB", "status"],
        &rows_b,
    );
    println!(
        "\nShape check: ResNet-50 throughput saturates after batch 32; NMT throughput\n\
         scales ~linearly with batch size until the 12 GB wall stops it at 128."
    );
    save_json("fig04", &json!({"resnet50": json_a, "nmt": json_b}));
}
