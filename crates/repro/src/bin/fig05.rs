//! Figure 5: NMT memory-consumption breakdown by layer type (left bar)
//! and by data structure (right bar), plus the profiler-vs-nvidia-smi gap
//! (striped bar).

use echo_repro::{gib, print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let mut cfg = NmtRunConfig::zhu("Default B=128", LstmBackend::Default, 128, false);
    cfg.enforce_capacity = false; // breakdown must not OOM
    let r = run_nmt(&cfg).expect("nmt run");
    let bd = r.breakdown.expect("breakdown");

    let layer_rows: Vec<Vec<String>> = bd
        .layer_rows()
        .iter()
        .map(|row| {
            vec![
                row.category.clone(),
                format!("{:.2}", row.bytes as f64 / echo_repro::GIB),
                format!("{:.1}%", row.fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 5 (left): by layer type",
        &["layer", "GiB", "share"],
        &layer_rows,
    );

    let kind_rows: Vec<Vec<String>> = bd
        .kind_rows()
        .iter()
        .map(|row| {
            vec![
                row.category.clone(),
                format!("{:.2}", row.bytes as f64 / echo_repro::GIB),
                format!("{:.1}%", row.fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 5 (right): by data structure",
        &["structure", "GiB", "share"],
        &kind_rows,
    );

    println!(
        "\nprofiler total {} GiB, nvidia-smi {} GiB (gap {} GiB = CUDA context + fragmentation)",
        gib(bd.total_bytes),
        gib(bd.nvidia_smi_bytes),
        gib(bd.unattributed_bytes()),
    );
    println!(
        "Paper's claim: feature maps of the attention layers are the bottleneck\n\
         (~60% / ~5 GB). Measured here: attention {:.0}% ({:.1} GiB), feature maps {:.0}%.",
        bd.layer_fraction(echo_memory::LayerKind::Attention) * 100.0,
        bd.layer_bytes(echo_memory::LayerKind::Attention) as f64 / echo_repro::GIB,
        bd.kind_fraction(echo_memory::DataStructureKind::FeatureMap) * 100.0,
    );
    save_json(
        "fig05",
        &json!({
            "total_bytes": bd.total_bytes,
            "nvidia_smi_bytes": bd.nvidia_smi_bytes,
            "attention_fraction": bd.layer_fraction(echo_memory::LayerKind::Attention),
            "feature_map_fraction": bd.kind_fraction(echo_memory::DataStructureKind::FeatureMap),
            "by_layer": bd.layer_rows(),
            "by_kind": bd.kind_rows(),
        }),
    );
}
