//! Figure 6: NMT runtime breakdown of one training iteration — GPU kernel
//! time by category (left bar) and CUDA API time (right bar) — with
//! MXNet's *sequential* SequenceReverse, whose ~1 GB/s effective bandwidth
//! makes it the kernel-time bottleneck.

use echo_device::KernelCategory;
use echo_models::NmtHyper;
use echo_repro::{print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let mut hyper = NmtHyper::zhu(LstmBackend::Default);
    hyper.parallel_reverse = false; // the raw MXNet implementation
    let cfg = NmtRunConfig {
        label: "Default (sequential SequenceReverse), B=128".to_string(),
        hyper,
        batch: 128,
        echo: false,
        spec: echo_device::DeviceSpec::titan_xp(),
        enforce_capacity: false,
    };
    let r = run_nmt(&cfg).expect("nmt run");
    let trace = r.trace.expect("trace");

    let rows: Vec<Vec<String>> = trace
        .by_category
        .iter()
        .map(|(cat, ns)| {
            vec![
                cat.to_string(),
                format!("{:.1}", *ns as f64 / 1e6),
                format!("{:.1}%", 100.0 * *ns as f64 / trace.kernel_ns as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 6 (left): GPU kernel time by category, one iteration",
        &["category", "ms", "share"],
        &rows,
    );

    let api_rows = vec![
        vec![
            "cudaLaunch".to_string(),
            format!("{:.1}", trace.api.launch_ns as f64 / 1e6),
            trace.api.launch_calls.to_string(),
        ],
        vec![
            "cudaSynchronize".to_string(),
            format!("{:.1}", trace.api.sync_ns as f64 / 1e6),
            trace.api.sync_calls.to_string(),
        ],
    ];
    print_table(
        "Figure 6 (right): CUDA API time",
        &["api", "ms", "calls"],
        &api_rows,
    );

    let seqrev = trace.category_fraction(KernelCategory::SequenceReverse);
    let softmax = trace.category_fraction(KernelCategory::Softmax);
    let fc = trace.category_fraction(KernelCategory::FullyConnected);
    println!(
        "\nPaper's claims: SequenceReverse dominates kernel time (engineering bug);\n\
         Softmax is NOT the bottleneck (0.3%); after fixing SequenceReverse the\n\
         fully-connected layers are. Measured: seqrev {:.0}%, softmax {:.1}%, fc {:.0}%.",
        seqrev * 100.0,
        softmax * 100.0,
        fc * 100.0
    );
    save_json(
        "fig06",
        &json!({
            "kernel_ms": trace.kernel_ns as f64 / 1e6,
            "elapsed_ms": trace.elapsed_ns as f64 / 1e6,
            "seqrev_fraction": seqrev,
            "softmax_fraction": softmax,
            "fc_fraction": fc,
            "launch_ms": trace.api.launch_ns as f64 / 1e6,
            "by_category": trace.by_category.iter().map(|(c, ns)| json!({"category": c.to_string(), "ns": ns})).collect::<Vec<_>>(),
        }),
    );
}
