//! Figure 7: (a) runtime profile of a 1-layer LSTM (B=64, H=512)
//! comparing the MXNet Default and cuDNN implementations — Default drowns
//! in `cudaLaunch` calls; (b) the cuDNN implementation's GPU-kernel
//! breakdown, dominated by `sgemm`.

use echo_device::{DeviceSim, DeviceSpec};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::{DeviceMemory, LayerKind};
use echo_ops::MeanAll;
use echo_repro::{print_table, save_json};
use echo_rnn::{pure::CPP_OP_OVERHEAD_NS, LstmBackend, LstmStack};
use echo_tensor::{Shape, Tensor};
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

fn profile(backend: LstmBackend) -> echo_device::TraceSummary {
    let (t, b, h) = (50usize, 64usize, 512usize);
    let mut g = echo_graph::Graph::new();
    let x = g.input("x", LayerKind::Rnn);
    let stack = LstmStack::build(&mut g, backend, x, t, h, h, 1, "rnn", LayerKind::Rnn);
    let loss = g.apply("loss", Arc::new(MeanAll), &[stack.output], LayerKind::Other);
    let graph = Arc::new(g);
    let mem = DeviceMemory::with_overhead_model(32 << 30, 0, 0.0);
    let mut exec = Executor::new(graph, StashPlan::stash_all(), mem);
    stack.bind_param_shapes(&mut exec).expect("bind");
    let mut bindings = HashMap::new();
    bindings.insert(x, Tensor::zeros(Shape::d3(t, b, h)));
    stack.add_zero_state_bindings(b, &mut bindings);
    let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
    sim.set_op_overhead_ns(CPP_OP_OVERHEAD_NS);
    exec.train_step(
        &bindings,
        loss,
        ExecOptions {
            training: true,
            numeric: false,
        },
        Some(&mut sim),
    )
    .expect("run");
    sim.synchronize();
    sim.summary()
}

fn main() {
    let default = profile(LstmBackend::Default);
    let cudnn = profile(LstmBackend::CuDnn);

    let rows = [("Default", &default), ("CuDNN", &cudnn)]
        .iter()
        .map(|(name, t)| {
            vec![
                name.to_string(),
                format!("{:.2}", t.elapsed_ns as f64 / 1e6),
                format!("{:.2}", t.kernel_ns as f64 / 1e6),
                format!("{:.2}", t.api.launch_ns as f64 / 1e6),
                t.api.launch_calls.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "Figure 7(a): 1-layer LSTM (B=64, H=512) runtime profile, one iteration",
        &["impl", "wall ms", "kernel ms", "cudaLaunch ms", "launches"],
        &rows,
    );

    let kernel_rows: Vec<Vec<String>> = cudnn
        .by_name
        .iter()
        .take(6)
        .map(|(name, ns)| {
            vec![
                name.clone(),
                format!("{:.2}", *ns as f64 / 1e6),
                format!("{:.1}%", 100.0 * *ns as f64 / cudnn.kernel_ns as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 7(b): CuDNN GPU-kernel breakdown",
        &["kernel", "ms", "share"],
        &kernel_rows,
    );

    let launch_ratio = default.api.launch_calls as f64 / cudnn.api.launch_calls.max(1) as f64;
    let sgemm_share: u64 = cudnn
        .by_name
        .iter()
        .filter(|(n, _)| n.starts_with("sgemm"))
        .map(|&(_, ns)| ns)
        .sum();
    println!(
        "\nPaper's claims: Default spends comparable time in cudaLaunch and kernels\n\
         (~{launch_ratio:.0}x more launches than cuDNN here); cuDNN's time is sgemm-dominated.\n\
         Measured sgemm share of CuDNN kernels: {:.0}%.",
        100.0 * sgemm_share as f64 / cudnn.kernel_ns as f64
    );
    save_json(
        "fig07",
        &json!({
            "default": {"elapsed_ns": default.elapsed_ns, "kernel_ns": default.kernel_ns,
                         "launch_ns": default.api.launch_ns, "launches": default.api.launch_calls},
            "cudnn": {"elapsed_ns": cudnn.elapsed_ns, "kernel_ns": cudnn.kernel_ns,
                       "launch_ns": cudnn.api.launch_ns, "launches": cudnn.api.launch_calls,
                       "sgemm_fraction": sgemm_share as f64 / cudnn.kernel_ns as f64},
        }),
    );
}
