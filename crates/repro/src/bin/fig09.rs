//! Figure 9: runtime and memory-hierarchy utilization of `Y = XWᵀ` versus
//! `Yᵀ = WXᵀ` for (a) LSTM-shaped and (b) GRU-shaped fully-connected
//! layers.
//!
//! Two independent measurements:
//! * the **GPU model**: both formulations through the warp-coalescing +
//!   L2 trace simulator and the device timing model (the paper's actual
//!   mechanism);
//! * a **real CPU cross-check**: the same products run with the blocked
//!   GEMM under both layouts on this machine (also exercised by
//!   `cargo bench -p echo-repro --bench gemm_layout`).

use echo_cachesim::{simulate_gemm, CacheConfig, TiledGemmSpec};
use echo_device::{DeviceSim, DeviceSpec};
use echo_repro::{print_table, save_json};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{gemm, MatView, MatViewMut, MatrixLayout, Shape};
use serde_json::json;
use std::time::Instant;

fn gpu_model_row(name: &str, spec: &TiledGemmSpec) -> (Vec<String>, serde_json::Value) {
    let report = simulate_gemm(spec, &CacheConfig::titan_xp_l2());
    let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
    let ns = sim.launch_gemm(name, spec);
    let row = vec![
        name.to_string(),
        format!("{:.1}", ns as f64 / 1e3),
        format!("{:.0}%", report.coalescing_efficiency() * 100.0),
        format!("{:.0}%", report.l2_hit_rate() * 100.0),
        format!("{}", report.load_transactions),
        format!("{:.1}", report.total_dram_bytes() as f64 / 1e6),
    ];
    let j = json!({
        "name": name,
        "sim_us": ns as f64 / 1e3,
        "coalescing_efficiency": report.coalescing_efficiency(),
        "l2_hit_rate": report.l2_hit_rate(),
        "load_transactions": report.load_transactions,
        "dram_mb": report.total_dram_bytes() as f64 / 1e6,
    });
    (row, j)
}

/// Times the actual CPU product under a layout (median of `reps`).
fn cpu_time_us(b: usize, h: usize, o: usize, col_major: bool, reps: usize) -> f64 {
    let mut rng = seeded_rng(1);
    let x = uniform(Shape::d2(b, h), 1.0, &mut rng);
    let w = uniform(Shape::d2(o, h), 1.0, &mut rng);
    let xt = x.transpose2().expect("rank 2");
    let mut out = vec![0.0f32; b * o];
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            if col_major {
                gemm::gemm_blocked(
                    1.0,
                    w.as_mat(),
                    MatView::new(xt.data(), b, h, MatrixLayout::ColMajor).t(),
                    0.0,
                    &mut MatViewMut::new(&mut out, o, b, MatrixLayout::RowMajor),
                )
                .expect("gemm");
            } else {
                gemm::gemm_blocked(
                    1.0,
                    x.as_mat(),
                    w.as_mat().t(),
                    0.0,
                    &mut MatViewMut::new(&mut out, b, o, MatrixLayout::RowMajor),
                )
                .expect("gemm");
            }
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    times[times.len() / 2]
}

fn main() {
    let mut all = Vec::new();
    for (panel, b, h, o) in [
        ("(a) LSTM", 64usize, 512usize, 2048usize),
        ("(b) GRU", 64, 1024, 3072),
    ] {
        let (row_rm, j_rm) = gpu_model_row(
            "Y=XW^T   (row-major)",
            &TiledGemmSpec::fc_row_major(b, h, o),
        );
        let (row_cm, j_cm) = gpu_model_row(
            "Y^T=WX^T (col-major)",
            &TiledGemmSpec::fc_col_major(b, h, o),
        );
        print_table(
            &format!("Figure 9{panel}: X [{b} x {h}], W [{o} x {h}] — GPU model"),
            &[
                "formulation",
                "sim µs",
                "coalesce",
                "L2 hit",
                "load tx",
                "DRAM MB",
            ],
            &[row_rm, row_cm],
        );

        let cpu_rm = cpu_time_us(b, h, o, false, 5);
        let cpu_cm = cpu_time_us(b, h, o, true, 5);
        println!(
            "real CPU cross-check (blocked GEMM): row-major {cpu_rm:.0} µs, col-major {cpu_cm:.0} µs"
        );
        all.push(json!({"panel": panel, "row_major": j_rm, "col_major": j_cm,
                        "cpu_row_major_us": cpu_rm, "cpu_col_major_us": cpu_cm}));
    }
    println!(
        "\nPaper's claim: Y^T = WX^T is up to ~2x faster (LSTM shape) / ~1.3x (GRU shape)\n\
         with better cache behaviour, despite identical FLOPs."
    );
    save_json("fig09", &all);
}
