//! Figure 12: (a) training-perplexity curves vs. global step for Default,
//! Default^par_rev and EcoRNN at the same batch size — they must overlap
//! exactly; (b) validation-BLEU curves vs. (simulated) wall-clock time —
//! the Echo plan frees enough memory to double the batch, which reaches
//! the target quality faster.
//!
//! This is a *numeric-plane* experiment: the models really train (on a
//! synthetic IWSLT-like corpus, scaled for CPU), while a device simulator
//! rides along to supply the wall-clock axis.

use echo::{EchoCompiler, EchoConfig};
use echo_data::{NmtBatch, ParallelCorpus, Vocab};
use echo_device::{DeviceSim, DeviceSpec};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel, Sgd, TrainLog};
use echo_repro::{print_table, save_json, FRAMEWORK_OP_OVERHEAD_NS};
use echo_rnn::LstmBackend;
use serde_json::json;
use std::sync::Arc;

struct CurveResult {
    label: String,
    loss_by_step: Vec<(u64, f32)>,
    bleu_log: TrainLog,
    peak_bytes: u64,
}

#[allow(clippy::too_many_arguments)]
fn train(
    label: &str,
    corpus: &ParallelCorpus,
    batch_size: usize,
    plan_echo: bool,
    backend: LstmBackend,
    parallel_reverse: bool,
    epochs: usize,
    lr: f32,
) -> CurveResult {
    let mut hyper = NmtHyper::tiny(corpus.src_vocab().size(), corpus.tgt_vocab().size());
    hyper.hidden = 48;
    hyper.embed = 32;
    hyper.src_len = 8;
    hyper.tgt_len = 9;
    hyper.backend = backend;
    hyper.parallel_reverse = parallel_reverse;
    let model = NmtModel::build(hyper);
    let (train, valid) = corpus.split_validation(48);
    let batches = NmtBatch::bucketed(train, batch_size);

    let plan = if plan_echo {
        EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &model.bindings(&batches[0]),
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .expect("compile")
            .plan
    } else {
        StashPlan::stash_all()
    };

    let mem = DeviceMemory::with_capacity(4 << 30);
    let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem.clone());
    model.bind_params(&mut exec, 2).expect("bind");
    let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
    sim.set_record_trace(false);
    sim.set_op_overhead_ns(FRAMEWORK_OP_OVERHEAD_NS);
    let mut sgd = Sgd::new(lr).with_clip_norm(5.0);

    let mut loss_by_step = Vec::new();
    let mut bleu_log = TrainLog::new();
    let mut step = 0u64;
    for _epoch in 0..epochs {
        let mut sum = 0.0f32;
        for batch in &batches {
            let stats = exec
                .train_step(
                    &model.bindings(batch),
                    model.loss,
                    ExecOptions::default(),
                    Some(&mut sim),
                )
                .expect("train step");
            sum += stats.loss.unwrap();
            sgd.step(&mut exec);
            step += 1;
        }
        sim.synchronize();
        loss_by_step.push((step, sum / batches.len() as f32));
        let bleu = model
            .validation_bleu(&mut exec, valid, batch_size.min(8))
            .expect("bleu");
        bleu_log.push(step, sim.elapsed_ns() as f64 * 1e-9, bleu);
    }
    CurveResult {
        label: label.to_string(),
        loss_by_step,
        bleu_log,
        peak_bytes: mem.peak_bytes(),
    }
}

fn main() {
    let corpus = ParallelCorpus::synthetic(Vocab::new(60), Vocab::new(50), 900, 3..=8, 5);

    // The three same-batch configurations must produce identical curves;
    // the doubled batch uses the standard linear learning-rate scaling and
    // runs more epochs (it performs half as many updates per epoch, and
    // each epoch costs far less wall-clock).
    let default = train(
        "Default B=16",
        &corpus,
        16,
        false,
        LstmBackend::Default,
        false,
        30,
        1.0,
    );
    let default_par = train(
        "Default^par B=16",
        &corpus,
        16,
        false,
        LstmBackend::Default,
        true,
        30,
        1.0,
    );
    let eco = train(
        "EcoRNN^par B=16",
        &corpus,
        16,
        true,
        LstmBackend::Default,
        true,
        30,
        1.0,
    );
    let eco_big = train(
        "EcoRNN^par B=32",
        &corpus,
        32,
        true,
        LstmBackend::Default,
        true,
        45,
        1.8,
    );

    // (a) Perplexity curves vs global step must coincide for the first
    // three configurations.
    let rows: Vec<Vec<String>> = default
        .loss_by_step
        .iter()
        .zip(&default_par.loss_by_step)
        .zip(&eco.loss_by_step)
        .enumerate()
        .filter(|(i, _)| i % 5 == 4)
        .map(|(_, ((d, dp), e))| {
            vec![
                d.0.to_string(),
                format!("{:.4}", d.1.exp()),
                format!("{:.4}", dp.1.exp()),
                format!("{:.4}", e.1.exp()),
            ]
        })
        .collect();
    print_table(
        "Figure 12(a): training perplexity vs global step (B=16)",
        &["step", "Default", "Default^par", "EcoRNN^par"],
        &rows,
    );
    let identical = default
        .loss_by_step
        .iter()
        .zip(&eco.loss_by_step)
        .all(|(a, b)| a.1 == b.1);
    println!(
        "curves bitwise identical (Default vs EcoRNN): {identical}\n\
         (Default vs Default^par identical: {} — SequenceReverse variants are\n\
         numerically identical too)",
        default
            .loss_by_step
            .iter()
            .zip(&default_par.loss_by_step)
            .all(|(a, b)| a.1 == b.1)
    );

    // (b) Validation BLEU vs simulated wall-clock.
    let target = default_par.bleu_log.max_value().unwrap_or(0.0) * 0.9;
    let mut rows = Vec::new();
    for r in [&default, &default_par, &eco, &eco_big] {
        let t = r.bleu_log.time_to_reach_above(target);
        rows.push(vec![
            r.label.clone(),
            format!("{:.1}", r.bleu_log.max_value().unwrap_or(0.0)),
            t.map_or("—".to_string(), |t| format!("{t:.1}")),
            format!("{:.1}", r.peak_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    print_table(
        &format!("Figure 12(b): validation BLEU vs simulated wall-clock (target {target:.1})"),
        &["config", "best BLEU", "time-to-target (sim s)", "peak MiB"],
        &rows,
    );
    let t_base = default_par.bleu_log.time_to_reach_above(target);
    let t_big = eco_big.bleu_log.time_to_reach_above(target);
    let time_speedup = match (t_base, t_big) {
        (Some(a), Some(b)) if b > 0.0 => a / b,
        _ => 1.0,
    };
    println!(
        "\nspeedup to target quality from training with the doubled batch: {time_speedup:.2}x\n\
         (paper: 1.5x from batch 128 -> 256)"
    );
    // Convergence bonus: how many fewer samples the large-batch run needs
    // to reach the target quality (speedup beyond raw throughput).
    let samples_to_target = |r: &CurveResult, per_step: usize| {
        r.bleu_log
            .entries()
            .iter()
            .find(|&&(_, _, v)| v >= target)
            .map(|&(step, _, _)| step as f64 * per_step as f64)
    };
    let convergence_bonus = match (
        samples_to_target(&default_par, 16),
        samples_to_target(&eco_big, 32),
    ) {
        (Some(a), Some(b)) if b > 0.0 => a / b,
        _ => 1.0,
    };
    println!("large-batch convergence bonus (samples-to-target ratio): {convergence_bonus:.2}x");
    save_json(
        "fig12",
        &json!({
            "identical_training_curves": identical,
            "convergence_bonus": convergence_bonus,
            "time_to_quality_speedup": time_speedup,
            "configs": [&default.label, &default_par.label, &eco.label, &eco_big.label],
            "bleu_curves": [
                default.bleu_log.entries(), default_par.bleu_log.entries(),
                eco.bleu_log.entries(), eco_big.bleu_log.entries()
            ],
            "peak_bytes": [default.peak_bytes, default_par.peak_bytes, eco.peak_bytes, eco_big.peak_bytes],
        }),
    );
}
