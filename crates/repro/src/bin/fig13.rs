//! Figure 13: GPU memory consumption and training throughput for the
//! Default baseline and EcoRNN (= Default + partial forward propagation):
//! the footprint halves at unchanged batch size, and the freed memory
//! admits batch 256, raising throughput.

use echo_repro::{gib, print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let configs = [
        NmtRunConfig::zhu("Default^par B=128", LstmBackend::Default, 128, false),
        NmtRunConfig::zhu("EcoRNN^par  B=128", LstmBackend::Default, 128, true),
        NmtRunConfig::zhu("EcoRNN^par  B=256", LstmBackend::Default, 256, true),
    ];
    let results: Vec<_> = configs.iter().map(|c| run_nmt(c).expect("run")).collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                gib(r.nvidia_smi_bytes),
                format!("{:.0}", r.throughput),
                if r.oom { "OOM" } else { "fits" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 13: memory (a) and throughput (b), Zhu et al. setting, Titan Xp",
        &["config", "memory GiB", "samples/s", "status"],
        &rows,
    );

    let mem_ratio = results[0].nvidia_smi_bytes as f64 / results[1].nvidia_smi_bytes as f64;
    let same_batch = results[1].throughput / results[0].throughput;
    let big_batch = results[2].throughput / results[0].throughput;
    println!(
        "\nmemory reduction at B=128: {mem_ratio:.2}x (paper: ~2.1x)\n\
         throughput at same batch:  {same_batch:.2}x (paper: 1.04x)\n\
         throughput at batch 256:   {big_batch:.2}x (paper: ~1.3x)"
    );
    save_json(
        "fig13",
        &json!({
            "results": results,
            "memory_reduction": mem_ratio,
            "throughput_same_batch": same_batch,
            "throughput_big_batch": big_batch,
        }),
    );
}
