//! Figure 14: memory-consumption breakdown before/after partial forward
//! propagation — the attention layers' share collapses (paper: 59% → 6%)
//! while a small workspace share appears (0% → 3%).

use echo_memory::{DataStructureKind, LayerKind};
use echo_repro::{print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let mut base = NmtRunConfig::zhu("Default^par B=128", LstmBackend::Default, 128, false);
    base.enforce_capacity = false;
    let mut eco = base.clone();
    eco.label = "EcoRNN^par B=128".to_string();
    eco.echo = true;

    let r_base = run_nmt(&base).expect("run");
    let r_eco = run_nmt(&eco).expect("run");
    let bd_base = r_base.breakdown.expect("breakdown");
    let bd_eco = r_eco.breakdown.expect("breakdown");

    let layer_rows: Vec<Vec<String>> = LayerKind::ALL
        .iter()
        .map(|&l| {
            vec![
                l.to_string(),
                format!("{:.1}%", bd_base.layer_fraction(l) * 100.0),
                format!("{:.1}%", bd_eco.layer_fraction(l) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 14(a): by layer type",
        &["layer", "Default", "EcoRNN"],
        &layer_rows,
    );

    let kind_rows: Vec<Vec<String>> = DataStructureKind::ALL
        .iter()
        .map(|&k| {
            vec![
                k.to_string(),
                format!("{:.1}%", bd_base.kind_fraction(k) * 100.0),
                format!("{:.1}%", bd_eco.kind_fraction(k) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 14(b): by data structure",
        &["structure", "Default", "EcoRNN"],
        &kind_rows,
    );

    println!(
        "\nPaper's claims: attention share 59% -> 6%; workspace 0% -> 3%; feature\n\
         maps 91% -> 76%. Measured: attention {:.0}% -> {:.0}%, workspace {:.0}% -> {:.0}%,\n\
         feature maps {:.0}% -> {:.0}%.",
        bd_base.layer_fraction(LayerKind::Attention) * 100.0,
        bd_eco.layer_fraction(LayerKind::Attention) * 100.0,
        bd_base.kind_fraction(DataStructureKind::Workspace) * 100.0,
        bd_eco.kind_fraction(DataStructureKind::Workspace) * 100.0,
        bd_base.kind_fraction(DataStructureKind::FeatureMap) * 100.0,
        bd_eco.kind_fraction(DataStructureKind::FeatureMap) * 100.0,
    );
    save_json(
        "fig14",
        &json!({
            "base_attention": bd_base.layer_fraction(LayerKind::Attention),
            "eco_attention": bd_eco.layer_fraction(LayerKind::Attention),
            "base_workspace": bd_base.kind_fraction(DataStructureKind::Workspace),
            "eco_workspace": bd_eco.kind_fraction(DataStructureKind::Workspace),
            "base_total": bd_base.total_bytes,
            "eco_total": bd_eco.total_bytes,
        }),
    );
}
