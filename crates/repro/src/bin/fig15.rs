//! Figure 15: memory consumption and throughput comparison including the
//! cuDNN backend — cuDNN buys a little throughput but *increases* memory,
//! while EcoRNN's footprint reduction converts into a larger batch and
//! the best throughput.

use echo_repro::{gib, print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let configs = [
        NmtRunConfig::zhu("Default^par B=128", LstmBackend::Default, 128, false),
        NmtRunConfig::zhu("CuDNN^par   B=128", LstmBackend::CuDnn, 128, false),
        NmtRunConfig::zhu("EcoRNN^par  B=256", LstmBackend::Default, 256, true),
    ];
    let results: Vec<_> = configs.iter().map(|c| run_nmt(c).expect("run")).collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                gib(r.nvidia_smi_bytes),
                format!("{:.0}", r.throughput),
            ]
        })
        .collect();
    print_table(
        "Figure 15: memory (a) and throughput (b) incl. cuDNN",
        &["config", "memory GiB", "samples/s"],
        &rows,
    );

    let cudnn_mem = results[1].nvidia_smi_bytes as f64 / results[0].nvidia_smi_bytes as f64;
    let cudnn_thpt = results[1].throughput / results[0].throughput;
    let eco_vs_cudnn = results[2].throughput / results[1].throughput;
    println!(
        "\ncuDNN memory vs Default:   {:.2}x (paper: +7%)\n\
         cuDNN throughput vs Default: {cudnn_thpt:.2}x (paper: +8%)\n\
         EcoRNN(B=256) vs cuDNN:     {eco_vs_cudnn:.2}x (paper: 1.27x)",
        cudnn_mem
    );
    save_json(
        "fig15",
        &json!({
            "results": results,
            "cudnn_memory_ratio": cudnn_mem,
            "cudnn_throughput_ratio": cudnn_thpt,
            "eco_vs_cudnn_throughput": eco_vs_cudnn,
        }),
    );
}
