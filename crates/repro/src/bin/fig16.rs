//! Figure 16: memory-consumption sensitivity to (a) the number of LSTM
//! layers and (b) the hidden dimension. Configurations that no longer fit
//! in the 12 GB device are *estimated* by the paper's halve-batch /
//! double-usage rule (the dashed bars).

use echo_models::NmtHyper;
use echo_repro::{gib, print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn run(hyper: NmtHyper, echo: bool) -> (String, bool) {
    let cfg = NmtRunConfig {
        label: String::new(),
        hyper,
        batch: 128,
        echo,
        spec: echo_device::DeviceSpec::titan_xp(),
        enforce_capacity: true,
    };
    let r = run_nmt(&cfg).expect("run");
    (
        format!(
            "{}{}",
            gib(r.nvidia_smi_bytes),
            if r.estimated { "*" } else { "" }
        ),
        r.estimated,
    )
}

fn main() {
    let mut json_rows = Vec::new();

    // (a) Number of layers.
    let mut rows = Vec::new();
    for layers in [1usize, 2, 3, 4] {
        let mut hyper = NmtHyper::zhu(LstmBackend::Default);
        hyper.enc_layers = layers;
        hyper.dec_layers = layers;
        let (base, base_est) = run(hyper, false);
        let (eco, eco_est) = run(hyper, true);
        rows.push(vec![layers.to_string(), base.clone(), eco.clone()]);
        json_rows.push(json!({"sweep": "layers", "value": layers, "default": base,
                              "ecornn": eco, "default_estimated": base_est, "ecornn_estimated": eco_est}));
    }
    print_table(
        "Figure 16(a): memory (GiB) vs number of LSTM layers (B=128; * = estimated past the 12 GB wall)",
        &["layers", "Default", "EcoRNN"],
        &rows,
    );

    // (b) Hidden dimension.
    let mut rows = Vec::new();
    for hidden in [256usize, 512, 1024] {
        let mut hyper = NmtHyper::zhu(LstmBackend::Default);
        hyper.hidden = hidden;
        hyper.embed = hidden;
        let (base, base_est) = run(hyper, false);
        let (eco, eco_est) = run(hyper, true);
        rows.push(vec![hidden.to_string(), base.clone(), eco.clone()]);
        json_rows.push(json!({"sweep": "hidden", "value": hidden, "default": base,
                              "ecornn": eco, "default_estimated": base_est, "ecornn_estimated": eco_est}));
    }
    print_table(
        "Figure 16(b): memory (GiB) vs hidden dimension (B=128)",
        &["hidden", "Default", "EcoRNN"],
        &rows,
    );

    println!(
        "\nPaper's claim: EcoRNN's reduction holds across the sweep, enabling deeper\n\
         and wider models on the same 12 GB device."
    );
    save_json("fig16", &json_rows);
}
