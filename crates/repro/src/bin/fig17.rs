//! Figure 17: memory and throughput under Hieber et al.'s "Groundhog" and
//! "Best" hyperparameter settings — the footprint reduction generalizes
//! beyond the Zhu et al. setting.

use echo_models::NmtHyper;
use echo_repro::{gib, print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let mut out = Vec::new();
    for (name, hyper) in [
        ("Groundhog", NmtHyper::groundhog(LstmBackend::Default)),
        ("Best", NmtHyper::best(LstmBackend::Default)),
    ] {
        let mut rows = Vec::new();
        let mut pair = Vec::new();
        for (label, echo) in [("Default^par", false), ("EcoRNN^par", true)] {
            let cfg = NmtRunConfig {
                label: label.to_string(),
                hyper,
                batch: 128,
                echo,
                spec: echo_device::DeviceSpec::titan_xp(),
                enforce_capacity: true,
            };
            let r = run_nmt(&cfg).expect("run");
            rows.push(vec![
                label.to_string(),
                format!(
                    "{}{}",
                    gib(r.nvidia_smi_bytes),
                    if r.estimated { "*" } else { "" }
                ),
                format!("{:.0}", r.throughput),
            ]);
            pair.push(json!({"label": label, "memory_bytes": r.nvidia_smi_bytes,
                             "estimated": r.estimated, "throughput": r.throughput}));
        }
        print_table(
            &format!("Figure 17 ({name}): memory and throughput, B=128 (* = estimated)"),
            &["config", "memory GiB", "samples/s"],
            &rows,
        );
        out.push(json!({"setting": name, "results": pair}));
    }
    println!(
        "\nPaper's claim: EcoRNN reduces memory in both settings without losing\n\
         performance."
    );
    save_json("fig17", &out);
}
