//! Figure 18: hardware sensitivity — the Figure 13 experiment repeated on
//! a Titan V and an RTX 2080 Ti. Faster devices benefit *more* from the
//! larger batch (their compute is even more starved at batch 128).

use echo_device::DeviceSpec;
use echo_repro::{gib, print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let mut out = Vec::new();
    for spec in [
        DeviceSpec::titan_xp(),
        DeviceSpec::titan_v(),
        DeviceSpec::rtx_2080_ti(),
    ] {
        let mut rows = Vec::new();
        let mut results = Vec::new();
        for (label, batch, echo) in [
            ("Default^par B=128", 128usize, false),
            ("EcoRNN^par  B=256", 256, true),
        ] {
            let mut cfg = NmtRunConfig::zhu(label, LstmBackend::Default, batch, echo);
            cfg.spec = spec.clone();
            let r = run_nmt(&cfg).expect("run");
            rows.push(vec![
                label.to_string(),
                gib(r.nvidia_smi_bytes),
                format!("{:.0}", r.throughput),
            ]);
            results.push(r);
        }
        let speedup = results[1].throughput / results[0].throughput;
        print_table(
            &format!("Figure 18 ({}): memory and throughput", spec.name),
            &["config", "memory GiB", "samples/s"],
            &rows,
        );
        println!("EcoRNN speedup on {}: {speedup:.2}x", spec.name);
        out.push(json!({"device": spec.name, "speedup": speedup, "results": results}));
    }
    println!(
        "\nPaper's claim: the improvement grows from 1.3x (Titan Xp) to ~1.5x (Titan V)\n\
         and ~1.4x (RTX 2080 Ti) — newer devices gain more from bigger batches."
    );
    save_json("fig18", &out);
}
