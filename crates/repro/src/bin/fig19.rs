//! Figure 19: power and energy. Echo leaves board power essentially
//! unchanged, so the energy to reach the same quality shrinks by exactly
//! the wall-clock speedup (paper: ~1.5x more energy-efficient).

use echo_repro::{print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

/// Samples processed by the paper's full training run, for the energy
/// comparison (the constant cancels in the ratio).
const TRAINING_SAMPLES: f64 = 5.0e6;

fn main() {
    let configs = [
        NmtRunConfig::zhu("Default^par B=128", LstmBackend::Default, 128, false),
        NmtRunConfig::zhu("EcoRNN^par  B=128", LstmBackend::Default, 128, true),
        NmtRunConfig::zhu("EcoRNN^par  B=256", LstmBackend::Default, 256, true),
    ];
    let results: Vec<_> = configs.iter().map(|c| run_nmt(c).expect("run")).collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let train_seconds = TRAINING_SAMPLES / r.throughput;
            let energy_kj = r.power_w * train_seconds / 1e3;
            vec![
                r.label.clone(),
                format!("{:.0}", r.power_w),
                format!("{:.0}", train_seconds),
                format!("{:.0}", energy_kj),
            ]
        })
        .collect();
    print_table(
        "Figure 19: average board power (a) and energy to process 5M samples (b)",
        &["config", "power W", "sim time s", "energy kJ"],
        &rows,
    );

    let p0 = results[0].power_w;
    let p2 = results[2].power_w;
    let e_ratio = (p0 * TRAINING_SAMPLES / results[0].throughput)
        / (p2 * TRAINING_SAMPLES / results[2].throughput);
    // Energy for a fixed sample budget is the internally consistent
    // full-scale quantity (power and throughput measured at B=128/256).
    // The paper's ~1.5x energy gain additionally includes a large-batch
    // convergence bonus it observed at IWSLT scale; our toy-scale training
    // (Figure 12) reaches target quality 1.19x faster in wall-clock but
    // shows no sample-efficiency bonus, so we report the fixed-budget
    // number and cite Figure 12's wall-clock result alongside.
    let time_speedup = std::fs::read_to_string(
        std::path::Path::new(
            &std::env::var("ECHO_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
        )
        .join("fig12.json"),
    )
    .ok()
    .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
    .and_then(|v| v.get("time_to_quality_speedup").and_then(|b| b.as_f64()));
    println!(
        "\npower difference: {:.1}% (paper: negligible); energy for a fixed sample\n\
         budget: {e_ratio:.2}x less for EcoRNN B=256 (paper: ~1.5x including a\n\
         large-batch convergence bonus; Figure 12 measures the wall-clock\n\
         time-to-quality speedup at {})",
        100.0 * (p2 - p0) / p0,
        time_speedup.map_or("n/a".to_string(), |t| format!("{t:.2}x")),
    );
    save_json(
        "fig19",
        &json!({"results": results, "energy_gain_fixed_samples": e_ratio,
                "time_to_quality_speedup": time_speedup}),
    );
}
