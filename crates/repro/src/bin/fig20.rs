//! Figure 20: pure-LSTM runtime grid — forward and backward times of the
//! Default, CuDNN and EcoRNN backends over the Cartesian product of batch
//! size {32, 64, 128}, hidden dimension {256, 512, 1024} and layer count
//! {1, 2, 3, 4}, at T = 50 (nine panels in the paper).

use echo_device::DeviceSpec;
use echo_repro::{print_table, save_json};
use echo_rnn::{pure_lstm_times, LstmBackend, PureLstmConfig};
use serde_json::json;

fn main() {
    let spec = DeviceSpec::titan_xp();
    let mut out = Vec::new();
    let mut worst_vs_cudnn: f64 = f64::INFINITY;
    let mut best_vs_default: f64 = 0.0;

    for &batch in &[32usize, 64, 128] {
        for &hidden in &[256usize, 512, 1024] {
            let mut rows = Vec::new();
            for &layers in &[1usize, 2, 3, 4] {
                let mut cells = vec![layers.to_string()];
                let mut times = Vec::new();
                for backend in LstmBackend::ALL {
                    let cfg = PureLstmConfig::new(backend, batch, hidden, layers);
                    let (fwd, bwd) = pure_lstm_times(&cfg, &spec).expect("run");
                    cells.push(format!("{:.1}/{:.1}", fwd as f64 / 1e6, bwd as f64 / 1e6));
                    times.push((backend.to_string(), fwd, bwd));
                    out.push(json!({"batch": batch, "hidden": hidden, "layers": layers,
                                    "backend": backend.to_string(), "fwd_ns": fwd, "bwd_ns": bwd}));
                }
                let total = |i: usize| (times[i].1 + times[i].2) as f64;
                worst_vs_cudnn = worst_vs_cudnn.min(total(1) / total(2));
                best_vs_default = best_vs_default.max(total(0) / total(2));
                rows.push(cells);
            }
            print_table(
                &format!("Figure 20 panel B={batch}, H={hidden} (fwd/bwd ms, T=50)"),
                &["layers", "Default", "CuDNN", "EcoRNN"],
                &rows,
            );
        }
    }
    println!(
        "\nPaper's claims: EcoRNN beats Default by up to 3x and usually beats cuDNN\n\
         (by up to 1.5x); in a few multi-layer points cuDNN is within 20%.\n\
         Measured: best speedup vs Default {best_vs_default:.2}x; worst case vs cuDNN\n\
         {worst_vs_cudnn:.2}x (values < 1 mean cuDNN wins there)."
    );
    save_json("fig20", &out);
}
