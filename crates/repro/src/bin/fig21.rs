//! Figure 21: word-level language-modeling training throughput on the
//! PTB-like and Wikitext-2-like settings across hidden dimensions (the
//! MXNet example's 200/650/1500), for the three LSTM backends.

use echo_device::DeviceSpec;
use echo_models::WordLmHyper;
use echo_repro::{print_table, run_lm, save_json};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let spec = DeviceSpec::titan_xp();
    let batch = 32usize; // MXNet example default (--batch_size 32)
    let mut out = Vec::new();

    for (dataset, vocab) in [("PTB", 10_000usize), ("Wikitext-2", 33_278)] {
        let mut rows = Vec::new();
        for &hidden in &[200usize, 650, 1500] {
            let mut cells = vec![hidden.to_string()];
            let mut tps = Vec::new();
            for backend in LstmBackend::ALL {
                let hyper = WordLmHyper::mxnet_example(vocab, hidden, backend);
                let r = run_lm(format!("{dataset}-{hidden}-{backend}"), hyper, batch, &spec)
                    .expect("run");
                cells.push(format!("{:.0}", r.throughput));
                tps.push(r.throughput);
                out.push(json!({"dataset": dataset, "hidden": hidden,
                                "backend": backend.to_string(), "throughput": r.throughput}));
            }
            rows.push(cells);
        }
        print_table(
            &format!("Figure 21 ({dataset}): LM training throughput (samples/s, B={batch}, T=35, 2 layers)"),
            &["hidden", "Default", "CuDNN", "EcoRNN"],
            &rows,
        );
    }
    println!(
        "\nPaper's claims: EcoRNN up to 2x over Default and up to 1.2x over cuDNN,\n\
         with a few cases where cuDNN is within 20% (the autotuner falls back then)."
    );
    save_json("fig21", &out);
}
