//! Multi-GPU scaling (paper §6.6, Figure 17 setting): the data-parallel
//! trainer runs one simulated Titan Xp per replica; per-replica device
//! clocks plus an analytic PCIe all-reduce model project the step time
//! at 1, 2 and 4 GPUs — with the memory plan both untouched (stash-all,
//! the Echo pass's own output for a pure-LSTM LM) and replay-heavy
//! (Chen √N), showing that recomputation composes with data parallelism
//! without breaking bit-exactness.

use echo::{analysis::infer_shapes, chen_sqrt_plan, sqrt_stride, EchoCompiler, EchoConfig};
use echo_data::{BpttBatches, LmBatch, LmCorpus, Vocab};
use echo_device::{CommModel, DeviceSpec, ScalingReport};
use echo_graph::{Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{DataParallelOptions, ParallelTrainer, Sgd, WordLm, WordLmHyper};
use echo_repro::{print_table, save_json};
use echo_rnn::LstmBackend;
use serde_json::json;
use std::sync::Arc;

const LANES: usize = 16;
const MICRO: usize = 4;
const STEPS: usize = 4;

fn template(lm: &WordLm, plan: &StashPlan) -> Executor {
    let mut exec = Executor::new(
        Arc::clone(&lm.graph),
        plan.clone(),
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0),
    );
    lm.bind_params(&mut exec, 23).expect("bind");
    exec
}

fn batches(lm: &WordLm) -> Vec<LmBatch> {
    let corpus = LmCorpus::synthetic(Vocab::new(60), 12_000, 0.9, 3);
    BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(STEPS)
        .collect()
}

fn main() {
    let lm = WordLm::build(WordLmHyper::tiny(60, LstmBackend::CuDnn));
    let batches = batches(&lm);
    let grad_bytes: u64 = template(&lm, &StashPlan::stash_all())
        .export_params()
        .iter()
        .map(|(_, t)| t.len() as u64 * 4)
        .sum();

    let echo_plan = EchoCompiler::new(EchoConfig::default())
        .compile(
            &lm.graph,
            &lm.symbolic_bindings(LANES / MICRO),
            &lm.param_shapes(),
            &[lm.loss, lm.logits],
        )
        .expect("compile")
        .plan;
    let shapes = infer_shapes(
        &lm.graph,
        &lm.symbolic_bindings(LANES / MICRO),
        &lm.param_shapes(),
    )
    .expect("shapes");
    let (chen_plan, _) = chen_sqrt_plan(
        &lm.graph,
        &shapes,
        &[lm.loss, lm.logits],
        sqrt_stride(&lm.graph),
    );

    let mut out = Vec::new();
    for (name, plan) in [
        ("Echo pass (no-op on pure LSTM)", echo_plan),
        ("Chen sqrt(N) recompute", chen_plan),
    ] {
        // Serial baseline and the fleet share the plan; every
        // configuration trains bit-identically, so only time differs.
        let mut measurements: Vec<Vec<u64>> = Vec::new();
        let mut final_loss = 0.0f32;
        let mut peak_bytes = 0u64;
        for replicas in [1usize, 2, 4] {
            let mut trainer = ParallelTrainer::for_word_lm(
                &lm,
                &template(&lm, &plan),
                LANES,
                &DataParallelOptions::new(replicas, MICRO).with_sim(DeviceSpec::titan_xp()),
                Box::new(Sgd::new(0.5).with_clip_norm(5.0)),
            )
            .expect("trainer");
            let mut per_replica = vec![0u64; replicas];
            for batch in &batches {
                let report = trainer.step(batch);
                final_loss = report.loss;
                for stat in report.replicas {
                    per_replica[stat.replica] += stat.sim_ns;
                    peak_bytes = peak_bytes.max(stat.peak_bytes);
                }
            }
            for ns in &mut per_replica {
                *ns /= STEPS as u64;
            }
            measurements.push(per_replica);
        }

        let serial_ns = measurements[0][0];
        let mut report = ScalingReport::new(serial_ns, grad_bytes, CommModel::pcie_gen3());
        for m in &measurements {
            report.push_measurement(m);
        }
        let rows: Vec<Vec<String>> = report
            .points
            .iter()
            .map(|p| {
                vec![
                    p.replicas.to_string(),
                    format!("{:.3}", p.compute_ns as f64 * 1e-6),
                    format!("{:.3}", p.comm_ns as f64 * 1e-6),
                    format!("{:.3}", p.step_ns as f64 * 1e-6),
                    format!("{:.2}x", p.speedup),
                    format!("{:.0}%", p.efficiency * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!("{name}: simulated data-parallel scaling (word LM, B={LANES})"),
            &[
                "gpus",
                "compute ms",
                "comm ms",
                "step ms",
                "speedup",
                "efficiency",
            ],
            &rows,
        );
        println!(
            "  final loss {final_loss:.4} (identical at every replica count), \
             per-replica peak {:.1} MiB\n",
            peak_bytes as f64 / (1 << 20) as f64
        );
        out.push(
            json!({"plan": name, "report": report, "final_loss": final_loss,
                        "peak_bytes": peak_bytes}),
        );
    }
    save_json("multi_gpu_scaling", &out);
}
