//! §6.2's overhead analysis: how much does partial forward propagation
//! actually cost per iteration? The paper profiles the recomputed steps
//! (Figure 8's ② and ⑦) at 1.5% of one iteration — i.e. a maximum
//! theoretical overhead of 0.7% — and finds the DRAM-transaction count
//! *drops* slightly. Here we decompose the simulated iteration the same
//! way.

use echo_device::KernelCategory;
use echo_repro::{print_table, run_nmt, save_json, NmtRunConfig};
use echo_rnn::LstmBackend;
use serde_json::json;

fn main() {
    let mut base = NmtRunConfig::zhu("Default^par B=128", LstmBackend::Default, 128, false);
    base.enforce_capacity = false;
    let mut eco = base.clone();
    eco.label = "EcoRNN^par B=128".to_string();
    eco.echo = true;

    let r_base = run_nmt(&base).expect("run");
    let r_eco = run_nmt(&eco).expect("run");
    let t_base = r_base.trace.as_ref().expect("trace");
    let t_eco = r_eco.trace.as_ref().expect("trace");

    // Replayed work = growth of the attention-category forward kernels
    // (the replay re-executes exactly those).
    let attn = |t: &echo_device::TraceSummary| {
        t.category_ns(KernelCategory::Attention) + t.category_ns(KernelCategory::Activation)
    };
    let replay_ns = attn(t_eco).saturating_sub(attn(t_base));
    let wall_delta = r_eco.iteration_ns as f64 / r_base.iteration_ns as f64 - 1.0;

    let rows = vec![
        vec![
            "baseline iteration".to_string(),
            format!("{:.1} ms", r_base.iteration_ns as f64 / 1e6),
        ],
        vec![
            "echo iteration".to_string(),
            format!("{:.1} ms", r_eco.iteration_ns as f64 / 1e6),
        ],
        vec![
            "replayed kernel time".to_string(),
            format!(
                "{:.1} ms ({:.1}% of the iteration)",
                replay_ns as f64 / 1e6,
                100.0 * replay_ns as f64 / r_eco.iteration_ns as f64
            ),
        ],
        vec![
            "wall-clock overhead".to_string(),
            format!("{:+.1}%", wall_delta * 100.0),
        ],
        vec![
            "extra kernel launches".to_string(),
            format!(
                "{}",
                t_eco
                    .api
                    .launch_calls
                    .saturating_sub(t_base.api.launch_calls)
            ),
        ],
    ];
    print_table(
        "Recomputation overhead decomposition (paper §6.2: replay = 1.5% of one\n\
         iteration, max theoretical overhead 0.7%, net runtime +4%)",
        &["quantity", "measured"],
        &rows,
    );
    println!(
        "\nThe replayed kernels run while the host-bound training loop would have\n\
         idled the GPU anyway, which is why the wall-clock cost stays near zero\n\
         (the paper even measured a small gain from fewer memory transactions)."
    );
    save_json(
        "overhead",
        &json!({
            "baseline_iteration_ns": r_base.iteration_ns,
            "echo_iteration_ns": r_eco.iteration_ns,
            "replay_kernel_ns": replay_ns,
            "replay_fraction": replay_ns as f64 / r_eco.iteration_ns as f64,
            "wall_overhead": wall_delta,
        }),
    );
}
