//! Pipeline-parallel scaling (paper §6.6 setting, extended to stage
//! parallelism): the pipelined trainer runs one simulated Titan Xp per
//! stage worker over a multi-layer word LM, and the measured per-stage
//! device-busy times are compared against the analytic fill–drain
//! projection ([`PipelineModel`]) that accounts for the GPipe bubble and
//! the PCIe cut transfers. Training is bit-identical at every stage
//! count (the canonical tree fold fixes the accumulation order), so the
//! stage axis only moves time and per-worker memory — exactly the
//! trade the paper's multi-GPU section studies for the replica axis.

use echo::{analysis::infer_shapes, chen_sqrt_plan, sqrt_stride, EchoCompiler, EchoConfig};
use echo_data::{BpttBatches, LmBatch, LmCorpus, Vocab};
use echo_device::{CommModel, DeviceSpec, PipelineModel};
use echo_graph::{partition_stages, Executor, Gir, NodeId, StagePartition, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{PipelineOptions, PipelineTrainer, Sgd, WordLm, WordLmHyper};
use echo_repro::{print_table, save_json};
use echo_rnn::LstmBackend;
use echo_tensor::Shape;
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

const LANES: usize = 16;
const MICRO: usize = 4;
const STEPS: usize = 3;
const PARAM_SEED: u64 = 23;

fn model() -> WordLm {
    WordLm::build(WordLmHyper {
        vocab: 40,
        embed: 12,
        hidden: 16,
        layers: 4,
        seq_len: 6,
        backend: LstmBackend::Default,
    })
}

fn template(lm: &WordLm, plan: &StashPlan) -> Executor {
    let mut exec = Executor::new(
        Arc::clone(&lm.graph),
        plan.clone(),
        DeviceMemory::with_overhead_model(1 << 30, 0, 0.0),
    );
    lm.bind_params(&mut exec, PARAM_SEED).expect("bind");
    exec
}

fn batches(lm: &WordLm) -> Vec<LmBatch> {
    let corpus = LmCorpus::synthetic(Vocab::new(40), 8_000, 0.9, 5);
    BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(STEPS)
        .collect()
}

fn lm_partition(lm: &WordLm, stages: usize) -> StagePartition {
    let binding_shapes: HashMap<NodeId, Shape> = lm
        .symbolic_bindings(LANES / MICRO)
        .iter()
        .map(|(&id, t)| (id, t.shape().clone()))
        .collect();
    let gir = Gir::from_graph(
        Arc::clone(&lm.graph),
        &binding_shapes,
        &lm.param_shapes(),
        &[lm.loss],
    )
    .expect("gir");
    partition_stages(&gir, stages).expect("partition")
}

/// Average per-stage device-busy nanoseconds over `STEPS` steps, plus
/// the final loss and total replays (for the bit-exactness printout).
fn measure(
    lm: &WordLm,
    plan: &StashPlan,
    stages: usize,
    batches: &[LmBatch],
) -> (Vec<u64>, f32, u64) {
    let partition = lm_partition(lm, stages);
    let mut trainer = PipelineTrainer::for_word_lm(
        lm,
        template(lm, plan),
        &partition,
        plan,
        LANES,
        &PipelineOptions::new(1, MICRO).with_sim(DeviceSpec::titan_xp()),
        Box::new(Sgd::new(0.5).with_clip_norm(5.0)),
    )
    .expect("trainer");
    let mut busy = vec![0u64; stages];
    let mut loss = 0.0f32;
    let mut replays = 0u64;
    for batch in batches {
        let report = trainer.train_step(batch).expect("step");
        loss = report.loss;
        replays += report.total_replays();
        for stat in &report.stages {
            busy[stat.stage] += stat.sim_ns;
        }
    }
    for b in &mut busy {
        *b /= STEPS as u64;
    }
    (busy, loss, replays)
}

/// Splits one stage's measured per-step busy time into per-micro-batch
/// forward and backward costs under the standard `bwd = 2 · fwd`
/// convention. Every stage re-runs its forward during the seeded
/// backward (re-materialization) and every stage but the last also
/// forwards during fill, so the busy time of a non-last stage is
/// `M · (fwd + fwd + bwd)` and of the last stage `M · (fwd + bwd)`.
fn split_costs(busy_ns: u64, last: bool) -> (u64, u64) {
    let fwd = if last {
        busy_ns / (3 * MICRO as u64)
    } else {
        busy_ns / (4 * MICRO as u64)
    };
    (fwd, 2 * fwd)
}

fn main() {
    let lm = model();
    let batches = batches(&lm);
    let echo_plan = EchoCompiler::new(EchoConfig::default())
        .compile(
            &lm.graph,
            &lm.symbolic_bindings(LANES / MICRO),
            &lm.param_shapes(),
            &[lm.loss, lm.logits],
        )
        .expect("compile")
        .plan;
    let shapes = infer_shapes(
        &lm.graph,
        &lm.symbolic_bindings(LANES / MICRO),
        &lm.param_shapes(),
    )
    .expect("shapes");
    let (chen_plan, _) = chen_sqrt_plan(
        &lm.graph,
        &shapes,
        &[lm.loss, lm.logits],
        sqrt_stride(&lm.graph),
    );
    let comm = CommModel::pcie_gen3();

    let mut saved = Vec::new();
    for (plan_name, plan) in [
        ("Echo pass", echo_plan),
        ("Chen sqrt(N) recompute", chen_plan),
    ] {
        run_family(&lm, plan_name, &plan, &batches, &comm, &mut saved);
    }
    save_json("pipeline_scaling", &saved);
}

fn run_family(
    lm: &WordLm,
    plan_name: &str,
    plan: &StashPlan,
    batches: &[LmBatch],
    comm: &CommModel,
    saved: &mut Vec<serde_json::Value>,
) {
    let (serial_busy, serial_loss, serial_replays) = measure(lm, plan, 1, batches);
    let serial_ns = serial_busy[0];

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for stages in [2usize, 4] {
        let (busy, loss, replays) = measure(lm, plan, stages, batches);
        assert_eq!(
            loss.to_bits(),
            serial_loss.to_bits(),
            "P={stages} diverged from serial — pipeline must be bit-exact"
        );
        // Measured critical path: stage workers run concurrently, so the
        // busiest stage's device time bounds the step from below (it
        // ignores fill/drain stalls — the projection adds those back).
        let critical_ns = *busy.iter().max().expect("stages");
        let measured_speedup = serial_ns as f64 / critical_ns.max(1) as f64;
        let measured_eff = measured_speedup / stages as f64;

        let partition = lm_partition(lm, stages);
        let (stage_fwd_ns, stage_bwd_ns): (Vec<u64>, Vec<u64>) = busy
            .iter()
            .enumerate()
            .map(|(s, &b)| split_costs(b, s + 1 == stages))
            .unzip();
        let projection = PipelineModel {
            stage_fwd_ns,
            stage_bwd_ns,
            cut_bytes: partition.cut_bytes(),
            comm: comm.clone(),
        }
        .project(MICRO);

        rows.push(vec![
            stages.to_string(),
            format!("{:.3}", critical_ns as f64 * 1e-6),
            format!("{:.0}%", measured_eff * 100.0),
            format!("{:.3}", projection.pipelined_ns as f64 * 1e-6),
            format!("{:.0}%", projection.efficiency * 100.0),
            format!("{:.3}", projection.bubble_ns as f64 * 1e-6),
            replays.to_string(),
        ]);
        out.push(json!({
            "stages": stages,
            "measured_busy_ns": busy,
            "measured_critical_ns": critical_ns,
            "measured_efficiency": measured_eff,
            "projection": projection,
            "cut_bytes": partition.cut_bytes(),
            "loss": loss,
            "replays": replays,
        }));
    }

    print_table(
        &format!(
            "{plan_name}: simulated pipeline scaling (word LM, {} layers, B={LANES}, \
             M={MICRO}; serial step {:.3} ms)",
            lm.hyper.layers,
            serial_ns as f64 * 1e-6
        ),
        &[
            "stages",
            "busiest ms",
            "busy eff",
            "proj step ms",
            "proj eff",
            "bubble ms",
            "replays",
        ],
        &rows,
    );
    println!(
        "  loss {serial_loss:.4} identical at every stage count \
         (serial replays {serial_replays})\n"
    );
    saved.push(json!({
        "plan": plan_name,
        "serial_step_ns": serial_ns,
        "serial_replays": serial_replays,
        "comm": comm,
        "points": out,
    }));
}
