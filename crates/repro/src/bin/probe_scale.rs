//! Scratch probe for calibration (not a paper figure).

use echo_repro::{gib, run_nmt, NmtRunConfig};
use echo_rnn::LstmBackend;

fn main() {
    for (label, backend, batch, echo) in [
        ("Default B=128", LstmBackend::Default, 128, false),
        ("EcoRNN  B=128", LstmBackend::Default, 128, true),
        ("EcoRNN  B=256", LstmBackend::Default, 256, true),
        ("Default B=256", LstmBackend::Default, 256, false),
        ("CuDNN   B=128", LstmBackend::CuDnn, 128, false),
    ] {
        let cfg = NmtRunConfig::zhu(label, backend, batch, echo);
        match run_nmt(&cfg) {
            Ok(r) => println!(
                "{label}: peak {} GiB (smi {}) iter {:.1} ms thpt {:.0} samp/s oom={} replays={} power={:.0}W",
                gib(r.peak_bytes),
                gib(r.nvidia_smi_bytes),
                r.iteration_ns as f64 / 1e6,
                r.throughput,
                r.oom,
                r.replays,
                r.power_w
            ),
            Err(e) => println!("{label}: {e}"),
        }
    }
    // Batch sweep for Fig 4b shape.
    for b in [16usize, 32, 64, 128] {
        let cfg = NmtRunConfig::zhu("sweep", LstmBackend::Default, b, false);
        let r = run_nmt(&cfg).unwrap();
        println!(
            "B={b}: thpt {:.0} samp/s mem {} GiB",
            r.throughput,
            gib(r.peak_bytes)
        );
    }
    // Category breakdown at B=128 baseline.
    let cfg = NmtRunConfig::zhu("bd", LstmBackend::Default, 128, false);
    let r = run_nmt(&cfg).unwrap();
    if let Some(t) = &r.trace {
        println!(
            "kernel total {:.1} ms; elapsed {:.1} ms; launch {:.1} ms; sync {:.1} ms",
            t.kernel_ns as f64 / 1e6,
            t.elapsed_ns as f64 / 1e6,
            t.api.launch_ns as f64 / 1e6,
            t.api.sync_ns as f64 / 1e6
        );
        for (cat, ns) in &t.by_category {
            println!("  {cat}: {:.1} ms", *ns as f64 / 1e6);
        }
        for (name, ns) in t.by_name.iter().take(8) {
            println!("    {name}: {:.1} ms", *ns as f64 / 1e6);
        }
    }
}
