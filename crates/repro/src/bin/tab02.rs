//! Table 2: correlation between the autotuning microbenchmark's inverse
//! runtime (1/T) and the measured full-model LM training throughput,
//! across the hyperparameter grid and all three backends. High ρ means
//! the microbenchmark is a sound predictor for transparent backend
//! selection (paper: ρ = 0.971 on PTB, 0.950 on Wikitext-2).

use echo_device::DeviceSpec;
use echo_models::WordLmHyper;
use echo_repro::{pearson, print_table, run_lm, save_json};
use echo_rnn::{autotune, LstmBackend};
use serde_json::json;

fn main() {
    let spec = DeviceSpec::titan_xp();
    let batch = 32usize;
    let mut rows = Vec::new();
    let mut out = Vec::new();

    for (dataset, vocab) in [("PTB", 10_000usize), ("Wikitext-2", 33_278)] {
        let mut inv_micro = Vec::new();
        let mut throughput = Vec::new();
        for &hidden in &[200usize, 650, 1500] {
            for backend in LstmBackend::ALL {
                let hyper = WordLmHyper::mxnet_example(vocab, hidden, backend);
                let report =
                    autotune(batch, hidden, hyper.layers, hyper.seq_len, &spec).expect("autotune");
                let micro_ns = report.time_of(backend).expect("measured") as f64;
                let r = run_lm("t2", hyper, batch, &spec).expect("run");
                inv_micro.push(1.0 / micro_ns);
                throughput.push(r.throughput);
            }
        }
        let rho = pearson(&inv_micro, &throughput);
        rows.push(vec![dataset.to_string(), format!("{rho:.3}")]);
        out.push(json!({"dataset": dataset, "rho": rho,
                        "points": inv_micro.len()}));
    }
    print_table(
        "Table 2: correlation coefficient between 1/T_microbenchmark and training throughput",
        &["dataset", "rho"],
        &rows,
    );
    println!("\nPaper: rho = 0.971 (PTB), 0.950 (Wikitext-2).");
    save_json("tab02", &out);
}
