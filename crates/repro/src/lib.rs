//! Reproduction harness: shared experiment drivers behind the one-binary-
//! per-figure reproduction targets (see DESIGN.md's experiment index).
//!
//! Conventions:
//!
//! * every binary prints the paper artifact's rows/series as an aligned
//!   text table, and
//! * also writes a JSON record to `$ECHO_RESULTS_DIR` (default
//!   `./results`) so EXPERIMENTS.md can cite exact numbers.

#![warn(missing_docs)]

use echo::{EchoCompiler, EchoConfig};
use echo_device::{DeviceSim, DeviceSpec, TraceSummary};
use echo_graph::{ExecOptions, Executor, GraphError, StashPlan};
use echo_memory::{DeviceMemory, MemoryBreakdown};
use echo_models::{NmtHyper, NmtModel, WordLm, WordLmHyper};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Gibibytes, for display.
pub const GIB: f64 = (1u64 << 30) as f64;

/// CPU cost of dispatching one operator through MXNet's C++ engine
/// (distinct from `cudaLaunch`).
pub const FRAMEWORK_OP_OVERHEAD_NS: u64 = 4_000;

/// Per-iteration host-side cost of the Sockeye training loop (Python
/// glue, bucketing, metric updates, gradient synchronization). This
/// batch-size-independent constant is what makes NMT throughput scale
/// linearly with batch size until the memory wall (paper Figure 4b; Zhu
/// et al. measured ~50-60% GPU utilization for MXNet NMT) and why
/// in-operator replays are nearly free.
pub const NMT_HOST_OVERHEAD_NS: u64 = 130_000_000;

/// Per-iteration host-side cost of the (much tighter) MXNet word-LM
/// example loop.
pub const LM_HOST_OVERHEAD_NS: u64 = 5_000_000;

/// Sequence length used for *runtime* measurements: training batches are
/// bucketed, so throughput reflects typical bucket lengths (~50) while
/// peak memory is set by the longest buckets (the hyperparameter `T`,
/// 100 in the Zhu et al. setting).
pub const RUNTIME_SEQ_LEN: usize = 50;

/// One symbolic NMT measurement.
#[derive(Debug, Clone, Serialize)]
pub struct NmtRunResult {
    /// Configuration label.
    pub label: String,
    /// Batch size.
    pub batch: usize,
    /// Whether the run hit the device memory wall.
    pub oom: bool,
    /// Whether the memory figure is the paper's halve-batch/double-usage
    /// estimate (dashed bars in Figure 16).
    pub estimated: bool,
    /// Peak profiled bytes.
    pub peak_bytes: u64,
    /// What nvidia-smi would report.
    pub nvidia_smi_bytes: u64,
    /// Simulated nanoseconds per training iteration.
    pub iteration_ns: u64,
    /// Training throughput in samples per simulated second.
    pub throughput: f64,
    /// Segment replays per iteration (0 without the Echo plan).
    pub replays: u64,
    /// Average simulated board power, watts.
    pub power_w: f64,
    /// Two-axis memory breakdown at the peak.
    #[serde(skip)]
    pub breakdown: Option<MemoryBreakdown>,
    /// Kernel/API trace summary.
    #[serde(skip)]
    pub trace: Option<TraceSummary>,
}

/// Configuration for [`run_nmt`].
#[derive(Debug, Clone)]
pub struct NmtRunConfig {
    /// Display label.
    pub label: String,
    /// Model hyperparameters.
    pub hyper: NmtHyper,
    /// Batch size.
    pub batch: usize,
    /// Apply the Echo recomputation plan.
    pub echo: bool,
    /// Device to simulate.
    pub spec: DeviceSpec,
    /// Enforce the device memory capacity (disable for breakdown-only
    /// runs that must not OOM).
    pub enforce_capacity: bool,
}

impl NmtRunConfig {
    /// A config with the Zhu et al. hyperparameters on a Titan Xp.
    pub fn zhu(
        label: impl Into<String>,
        backend: echo_rnn::LstmBackend,
        batch: usize,
        echo: bool,
    ) -> Self {
        NmtRunConfig {
            label: label.into(),
            hyper: NmtHyper::zhu(backend),
            batch,
            echo,
            spec: DeviceSpec::titan_xp(),
            enforce_capacity: true,
        }
    }
}

/// Runs one NMT training iteration on each plane and measures everything.
///
/// Two symbolic runs are combined, mirroring how training statistics arise
/// in practice with bucketed batching:
///
/// * a **memory run** at the full unrolled lengths (`hyper.src_len` /
///   `tgt_len` — the longest bucket, which sets the peak footprint and
///   the OOM boundary), and
/// * a **runtime run** at [`RUNTIME_SEQ_LEN`] (a typical bucket, which
///   sets throughput, traces, power and energy).
///
/// On OOM the paper's estimation rule is applied: halve the batch until it
/// fits, then scale the measured footprint back up (tensor sizes are
/// linear in batch size, §6.2.2); the result is flagged `estimated` and
/// `oom`.
///
/// # Errors
///
/// Propagates non-OOM execution errors.
pub fn run_nmt(cfg: &NmtRunConfig) -> Result<NmtRunResult, GraphError> {
    match run_nmt_once(cfg, cfg.batch) {
        Ok(mut r) => {
            r.label = cfg.label.clone();
            Ok(r)
        }
        Err(GraphError::Oom(_)) => {
            // Halve until it fits, per the paper's estimation method.
            let mut batch = cfg.batch / 2;
            let mut factor = 2u64;
            loop {
                if batch == 0 {
                    return Err(GraphError::Oom(echo_memory::OomError {
                        requested: 0,
                        live: 0,
                        capacity: cfg.spec.memory_bytes,
                        tag: echo_memory::AllocationTag::new(
                            echo_memory::LayerKind::Other,
                            echo_memory::DataStructureKind::FeatureMap,
                            "estimation",
                        ),
                    }));
                }
                match run_nmt_once(cfg, batch) {
                    Ok(r) => {
                        return Ok(NmtRunResult {
                            label: cfg.label.clone(),
                            batch: cfg.batch,
                            oom: true,
                            estimated: true,
                            peak_bytes: r.peak_bytes * factor,
                            nvidia_smi_bytes: r.nvidia_smi_bytes * factor,
                            iteration_ns: r.iteration_ns * factor,
                            throughput: r.throughput,
                            replays: r.replays,
                            power_w: r.power_w,
                            breakdown: None,
                            trace: None,
                        });
                    }
                    Err(GraphError::Oom(_)) => {
                        batch /= 2;
                        factor *= 2;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(e) => Err(e),
    }
}

/// One symbolic pass over the model at the given lengths.
struct PhaseResult {
    peak_bytes: u64,
    nvidia_smi_bytes: u64,
    iteration_ns: u64,
    replays: u64,
    power_w: f64,
    breakdown: MemoryBreakdown,
    trace: TraceSummary,
}

fn run_phase(
    cfg: &NmtRunConfig,
    hyper: &NmtHyper,
    batch: usize,
) -> Result<PhaseResult, GraphError> {
    let model = NmtModel::build(*hyper);
    let bindings = model.symbolic_bindings(batch);
    let plan = if cfg.echo {
        let compiled = EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .map_err(echo::EchoError::into_graph_error)?;
        compiled.plan
    } else {
        StashPlan::stash_all()
    };

    let mem = if cfg.enforce_capacity {
        DeviceMemory::with_capacity(cfg.spec.memory_bytes)
    } else {
        DeviceMemory::with_overhead_model(1 << 40, 600 << 20, 0.04)
    };
    let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem.clone());
    model.bind_param_shapes(&mut exec)?;
    let mut sim = DeviceSim::new(cfg.spec.clone());
    sim.set_op_overhead_ns(FRAMEWORK_OP_OVERHEAD_NS);
    let opts = ExecOptions {
        training: true,
        numeric: false,
    };
    let stats = exec.train_step(&bindings, model.loss, opts, Some(&mut sim))?;
    sim.synchronize();
    // The Sockeye training loop's per-iteration host work extends the
    // wall clock with the GPU idling.
    let device_ns = sim.elapsed_ns();
    let iteration_ns = device_ns + NMT_HOST_OVERHEAD_NS;
    let energy = sim.energy_joules() + cfg.spec.idle_power_w * NMT_HOST_OVERHEAD_NS as f64 * 1e-9;
    let power_w = energy / (iteration_ns as f64 * 1e-9);
    Ok(PhaseResult {
        peak_bytes: mem.peak_bytes(),
        nvidia_smi_bytes: mem.nvidia_smi_peak_bytes(),
        iteration_ns,
        replays: stats.replays,
        power_w,
        breakdown: MemoryBreakdown::at_category_maxima(&mem),
        trace: sim.summary(),
    })
}

fn run_nmt_once(cfg: &NmtRunConfig, batch: usize) -> Result<NmtRunResult, GraphError> {
    // Memory phase: full unrolled lengths (the longest bucket).
    let mem_phase = run_phase(cfg, &cfg.hyper, batch)?;
    // Runtime phase: a typical bucket.
    let mut runtime_hyper = cfg.hyper;
    runtime_hyper.src_len = runtime_hyper.src_len.min(RUNTIME_SEQ_LEN);
    runtime_hyper.tgt_len = runtime_hyper.tgt_len.min(RUNTIME_SEQ_LEN);
    let time_phase = run_phase(cfg, &runtime_hyper, batch)?;
    Ok(NmtRunResult {
        label: String::new(),
        batch,
        oom: false,
        estimated: false,
        peak_bytes: mem_phase.peak_bytes,
        nvidia_smi_bytes: mem_phase.nvidia_smi_bytes,
        iteration_ns: time_phase.iteration_ns,
        throughput: batch as f64 / (time_phase.iteration_ns as f64 * 1e-9),
        replays: mem_phase.replays,
        power_w: time_phase.power_w,
        breakdown: Some(mem_phase.breakdown),
        trace: Some(time_phase.trace),
    })
}

/// One symbolic word-LM measurement.
#[derive(Debug, Clone, Serialize)]
pub struct LmRunResult {
    /// Display label.
    pub label: String,
    /// Simulated nanoseconds per iteration.
    pub iteration_ns: u64,
    /// Samples (sentfragments of `batch` lanes) per simulated second.
    pub throughput: f64,
}

/// Runs one symbolic word-LM training iteration.
///
/// # Errors
///
/// Propagates execution errors.
pub fn run_lm(
    label: impl Into<String>,
    hyper: WordLmHyper,
    batch: usize,
    spec: &DeviceSpec,
) -> Result<LmRunResult, GraphError> {
    let lm = WordLm::build(hyper);
    let mem = DeviceMemory::with_capacity(spec.memory_bytes);
    let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem);
    lm.bind_param_shapes(&mut exec)?;
    let mut sim = DeviceSim::new(spec.clone());
    sim.set_record_trace(false);
    sim.set_op_overhead_ns(FRAMEWORK_OP_OVERHEAD_NS);
    exec.train_step(
        &lm.symbolic_bindings(batch),
        lm.loss,
        ExecOptions {
            training: true,
            numeric: false,
        },
        Some(&mut sim),
    )?;
    sim.synchronize();
    let ns = sim.elapsed_ns() + LM_HOST_OVERHEAD_NS;
    Ok(LmRunResult {
        label: label.into(),
        iteration_ns: ns,
        throughput: batch as f64 / (ns as f64 * 1e-9),
    })
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<width$}  ",
                c,
                width = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|&w| "-".repeat(w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Writes a JSON record for one experiment under `$ECHO_RESULTS_DIR`
/// (default `./results`). I/O errors are reported but not fatal.
pub fn save_json(id: &str, value: &impl Serialize) {
    let dir = std::env::var("ECHO_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {id}: {e}"),
    }
}

/// Formats bytes as GiB with 2 decimals.
pub fn gib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / GIB)
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_rnn::LstmBackend;

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-9);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &inv) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmt_run_produces_consistent_numbers() {
        let mut cfg = NmtRunConfig::zhu("test", LstmBackend::CuDnn, 8, false);
        cfg.hyper.src_len = 20;
        cfg.hyper.tgt_len = 20;
        cfg.hyper.src_vocab = 2000;
        cfg.hyper.tgt_vocab = 2000;
        let r = run_nmt(&cfg).unwrap();
        assert!(!r.oom);
        assert!(r.peak_bytes > 0);
        assert!(r.throughput > 0.0);
        assert!(r.nvidia_smi_bytes > r.peak_bytes);
        assert!(r.breakdown.is_some());
    }

    #[test]
    fn echo_flag_reduces_peak() {
        let mut base = NmtRunConfig::zhu("base", LstmBackend::CuDnn, 8, false);
        base.hyper.src_len = 30;
        base.hyper.tgt_len = 30;
        base.hyper.src_vocab = 2000;
        base.hyper.tgt_vocab = 2000;
        let mut eco = base.clone();
        eco.echo = true;
        let r_base = run_nmt(&base).unwrap();
        let r_eco = run_nmt(&eco).unwrap();
        assert!(r_eco.replays > 0);
        assert!(
            r_eco.peak_bytes < r_base.peak_bytes,
            "echo {} vs base {}",
            r_eco.peak_bytes,
            r_base.peak_bytes
        );
    }

    #[test]
    fn oom_estimation_rule_kicks_in() {
        // A 12 GiB device cannot fit batch 512 at full Zhu scale.
        let cfg = NmtRunConfig::zhu("big", LstmBackend::CuDnn, 512, false);
        let r = run_nmt(&cfg).unwrap();
        assert!(r.oom && r.estimated);
        assert!(r.peak_bytes > DeviceSpec::titan_xp().memory_bytes);
    }

    #[test]
    fn lm_run_reports_throughput() {
        let hyper = WordLmHyper::tiny(500, LstmBackend::EcoRnn);
        let r = run_lm("lm", hyper, 32, &DeviceSpec::titan_xp()).unwrap();
        assert!(r.throughput > 0.0);
    }
}
