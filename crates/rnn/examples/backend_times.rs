//! Prints simulated forward/backward times of each LSTM backend for one
//! hyperparameter point.
//!
//! ```sh
//! cargo run -p echo-rnn --example backend_times --release
//! ```

use echo_device::DeviceSpec;
use echo_rnn::{pure_lstm_times, LstmBackend, PureLstmConfig};

fn main() {
    let spec = DeviceSpec::titan_xp();
    for backend in LstmBackend::ALL {
        let mut cfg = PureLstmConfig::new(backend, 64, 512, 1);
        cfg.seq_len = 20;
        let (fwd, bwd) = pure_lstm_times(&cfg, &spec).unwrap();
        println!(
            "{backend}: fwd={}us bwd={}us total={}us",
            fwd / 1000,
            bwd / 1000,
            (fwd + bwd) / 1000
        );
    }
}
