//! The autotuning microbenchmark (paper §5.4, Figure 11).
//!
//! Before training starts, Echo runs a short microbenchmark of each LSTM
//! backend under the user's hyperparameters and transparently selects the
//! fastest — sparing model authors the manual `--fused`-style switches
//! real toolkits require. Table 2 validates the approach: the inverse
//! microbenchmark runtime correlates with full-model training throughput
//! at ρ ≈ 0.95+.

use crate::backend::LstmBackend;
use crate::pure::{pure_lstm_times, PureLstmConfig};
use echo_device::DeviceSpec;
use echo_graph::Result;
use serde::{Deserialize, Serialize};

/// Outcome of one autotuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneReport {
    /// The selected backend.
    pub choice: LstmBackend,
    /// Simulated microbenchmark time per backend (forward + backward), ns.
    pub times_ns: Vec<(LstmBackend, u64)>,
    /// The hyperparameters benchmarked.
    pub config: PureLstmConfig,
    /// The host matmul policy the numeric plane dispatches under (see
    /// `echo_tensor::policy`) — recorded so a report pins down *both*
    /// tuning decisions that affect wall time: the simulated LSTM backend
    /// and the real host GEMM kernel executing it.
    pub host_matmul: String,
}

impl AutotuneReport {
    /// Microbenchmark time of one backend.
    pub fn time_of(&self, backend: LstmBackend) -> Option<u64> {
        self.times_ns
            .iter()
            .find(|(b, _)| *b == backend)
            .map(|&(_, t)| t)
    }
}

/// Runs the microbenchmark for `(batch, hidden, layers, seq_len)` on
/// `spec` and picks the fastest backend.
///
/// The microbenchmark uses a shortened sequence (the paper keeps it in the
/// order of 0.1 s of device time) — runtime scales linearly in `T`
/// (paper §6.3), so the ranking is preserved.
///
/// # Errors
///
/// Propagates graph-execution errors.
pub fn autotune(
    batch: usize,
    hidden: usize,
    layers: usize,
    seq_len: usize,
    spec: &DeviceSpec,
) -> Result<AutotuneReport> {
    let micro_t = seq_len.clamp(1, 20);
    let mut times = Vec::new();
    for backend in LstmBackend::ALL {
        let cfg = PureLstmConfig {
            backend,
            batch,
            hidden,
            layers,
            seq_len: micro_t,
        };
        let (fwd, bwd) = pure_lstm_times(&cfg, spec)?;
        times.push((backend, fwd + bwd));
    }
    let choice = times
        .iter()
        .min_by_key(|&&(_, t)| t)
        .map(|&(b, _)| b)
        .expect("three backends measured");
    Ok(AutotuneReport {
        choice,
        times_ns: times,
        config: PureLstmConfig {
            backend: choice,
            batch,
            hidden,
            layers,
            seq_len,
        },
        host_matmul: format!(
            "{}+{}",
            echo_tensor::matmul_policy().name(),
            echo_tensor::active_micro_kernel().name()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_a_backend_with_all_times_recorded() {
        let report = autotune(64, 256, 1, 50, &DeviceSpec::titan_xp()).unwrap();
        assert_eq!(report.times_ns.len(), 3);
        let best = report.time_of(report.choice).unwrap();
        for &(_, t) in &report.times_ns {
            assert!(best <= t);
        }
    }

    #[test]
    fn typically_picks_ecornn_for_paper_shapes() {
        let report = autotune(64, 512, 1, 50, &DeviceSpec::titan_xp()).unwrap();
        assert_eq!(report.choice, LstmBackend::EcoRnn);
    }

    #[test]
    fn never_picks_default_for_small_kernels() {
        // The launch-bound Default backend should lose everywhere in the
        // paper's hyperparameter grid.
        for &(b, h) in &[(32usize, 256usize), (128, 1024)] {
            let report = autotune(b, h, 2, 50, &DeviceSpec::titan_xp()).unwrap();
            assert_ne!(report.choice, LstmBackend::Default, "B={b} H={h}");
        }
    }
}
