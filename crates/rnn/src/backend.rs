//! Backend selection and the LSTM stack builder.

use crate::fused::{CudnnLstmStack, FusedLstmLayer};
use crate::unfused::build_unfused_lstm_layer;
use echo_graph::{Executor, Graph, NodeId, Result};
use echo_memory::LayerKind;
use echo_tensor::init::lstm_uniform;
use echo_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The three LSTM implementations the paper compares (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LstmBackend {
    /// MXNet's unfused per-step implementation.
    Default,
    /// The cuDNN-mirroring fused stack.
    CuDnn,
    /// The paper's fused, layout-optimized implementation.
    EcoRnn,
}

impl LstmBackend {
    /// All backends, in the paper's comparison order.
    pub const ALL: [LstmBackend; 3] = [
        LstmBackend::Default,
        LstmBackend::CuDnn,
        LstmBackend::EcoRnn,
    ];
}

impl fmt::Display for LstmBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LstmBackend::Default => write!(f, "Default"),
            LstmBackend::CuDnn => write!(f, "CuDNN"),
            LstmBackend::EcoRnn => write!(f, "EcoRNN"),
        }
    }
}

/// Parameter node ids for one LSTM layer.
#[derive(Debug, Clone, Copy)]
pub struct LstmParams {
    /// Input-projection weight (`[4H x In]`).
    pub wx: NodeId,
    /// Recurrent weight (`[4H x H]`).
    pub wh: NodeId,
    /// Bias (`[4H]`).
    pub b: NodeId,
    /// Input feature dimension of this layer.
    pub in_dim: usize,
}

/// One layer's recurrent-state interface: the `[B x H]` input nodes the
/// initial hidden/cell state binds to and the nodes carrying the final
/// state out of the unrolled graph. A stateful decoder feeds step t's
/// `h_last`/`c_last` values back in as step t+1's `h0`/`c0` bindings.
#[derive(Debug, Clone, Copy)]
pub struct LstmStateIo {
    /// Initial hidden state input node.
    pub h0: NodeId,
    /// Initial cell state input node.
    pub c0: NodeId,
    /// Final hidden state node (h at t = T-1).
    pub h_last: NodeId,
    /// Final cell state node (c at t = T-1).
    pub c_last: NodeId,
}

/// A built LSTM stack: output node, per-layer parameters, and any
/// zero-state input nodes the backend requires.
#[derive(Debug, Clone)]
pub struct LstmStack {
    /// Backend used to build the stack.
    pub backend: LstmBackend,
    /// `[T, B, H]` output node (last layer's hidden sequence).
    pub output: NodeId,
    /// Per-layer parameter nodes.
    pub params: Vec<LstmParams>,
    /// Initial-state input nodes (Default backend only) to bind to zeros
    /// `[B x H]`.
    pub zero_states: Vec<NodeId>,
    /// Per-layer recurrent-state nodes (Default backend only; the fused
    /// backends bake zero initial states into their kernels and expose no
    /// state I/O, so they cannot drive a stateful decoder).
    pub state_io: Vec<LstmStateIo>,
    /// Hidden dimension.
    pub hidden: usize,
}

impl LstmStack {
    /// Builds a stack of `layers` LSTM layers over `x_seq` (`[T, B,
    /// in_dim]`) using `backend`.
    #[allow(clippy::too_many_arguments)] // a builder struct would obscure the one-call construction sites
    pub fn build(
        g: &mut Graph,
        backend: LstmBackend,
        x_seq: NodeId,
        seq_len: usize,
        in_dim: usize,
        hidden: usize,
        layers: usize,
        prefix: &str,
        layer_kind: LayerKind,
    ) -> LstmStack {
        match backend {
            LstmBackend::Default => {
                let mut x = x_seq;
                let mut params = Vec::new();
                let mut zero_states = Vec::new();
                let mut state_io = Vec::new();
                let mut dim = in_dim;
                for l in 0..layers {
                    let built = build_unfused_lstm_layer(
                        g,
                        x,
                        seq_len,
                        hidden,
                        &format!("{prefix}_l{l}"),
                        layer_kind,
                    );
                    params.push(LstmParams {
                        wx: built.wx,
                        wh: built.wh,
                        b: built.b,
                        in_dim: dim,
                    });
                    zero_states.push(built.h0);
                    zero_states.push(built.c0);
                    state_io.push(LstmStateIo {
                        h0: built.h0,
                        c0: built.c0,
                        h_last: built.h_last,
                        c_last: built.c_last,
                    });
                    x = built.output;
                    dim = hidden;
                }
                LstmStack {
                    backend,
                    output: x,
                    params,
                    zero_states,
                    state_io,
                    hidden,
                }
            }
            LstmBackend::CuDnn => {
                let mut params = Vec::new();
                let mut inputs = vec![x_seq];
                let mut dim = in_dim;
                for l in 0..layers {
                    let wx = g.param(format!("{prefix}_l{l}_wx"), layer_kind);
                    let wh = g.param(format!("{prefix}_l{l}_wh"), layer_kind);
                    let b = g.param(format!("{prefix}_l{l}_b"), layer_kind);
                    inputs.extend([wx, wh, b]);
                    params.push(LstmParams {
                        wx,
                        wh,
                        b,
                        in_dim: dim,
                    });
                    dim = hidden;
                }
                let output = g.apply(
                    format!("{prefix}_cudnn"),
                    Arc::new(CudnnLstmStack::new(hidden, layers)),
                    &inputs,
                    layer_kind,
                );
                LstmStack {
                    backend,
                    output,
                    params,
                    zero_states: Vec::new(),
                    state_io: Vec::new(),
                    hidden,
                }
            }
            LstmBackend::EcoRnn => {
                let mut x = x_seq;
                let mut params = Vec::new();
                let mut dim = in_dim;
                for l in 0..layers {
                    let wx = g.param(format!("{prefix}_l{l}_wx"), layer_kind);
                    let wh = g.param(format!("{prefix}_l{l}_wh"), layer_kind);
                    let b = g.param(format!("{prefix}_l{l}_b"), layer_kind);
                    x = g.apply(
                        format!("{prefix}_eco_l{l}"),
                        Arc::new(FusedLstmLayer::new(hidden).with_eco_layout()),
                        &[x, wx, wh, b],
                        layer_kind,
                    );
                    params.push(LstmParams {
                        wx,
                        wh,
                        b,
                        in_dim: dim,
                    });
                    dim = hidden;
                }
                LstmStack {
                    backend,
                    output: x,
                    params,
                    zero_states: Vec::new(),
                    state_io: Vec::new(),
                    hidden,
                }
            }
        }
    }

    /// Binds freshly initialized parameter values (numeric plane).
    ///
    /// # Errors
    ///
    /// Propagates binding errors (e.g. device OOM).
    pub fn bind_params(&self, exec: &mut Executor, rng: &mut StdRng) -> Result<()> {
        for p in &self.params {
            exec.bind_param(
                p.wx,
                lstm_uniform(Shape::d2(4 * self.hidden, p.in_dim), self.hidden, rng),
            )?;
            exec.bind_param(
                p.wh,
                lstm_uniform(Shape::d2(4 * self.hidden, self.hidden), self.hidden, rng),
            )?;
            exec.bind_param(p.b, Tensor::zeros(Shape::d1(4 * self.hidden)))?;
        }
        Ok(())
    }

    /// Binds only parameter shapes (symbolic plane).
    ///
    /// # Errors
    ///
    /// Propagates binding errors (e.g. device OOM).
    pub fn bind_param_shapes(&self, exec: &mut Executor) -> Result<()> {
        for p in &self.params {
            exec.bind_param_shape(p.wx, Shape::d2(4 * self.hidden, p.in_dim))?;
            exec.bind_param_shape(p.wh, Shape::d2(4 * self.hidden, self.hidden))?;
            exec.bind_param_shape(p.b, Shape::d1(4 * self.hidden))?;
        }
        Ok(())
    }

    /// Shapes of every parameter node in the stack.
    pub fn param_shapes(&self) -> Vec<(NodeId, Shape)> {
        let mut out = Vec::new();
        for p in &self.params {
            out.push((p.wx, Shape::d2(4 * self.hidden, p.in_dim)));
            out.push((p.wh, Shape::d2(4 * self.hidden, self.hidden)));
            out.push((p.b, Shape::d1(4 * self.hidden)));
        }
        out
    }

    /// Adds the zero initial-state bindings this stack needs for batch
    /// size `batch`.
    pub fn add_zero_state_bindings(&self, batch: usize, bindings: &mut HashMap<NodeId, Tensor>) {
        for &node in &self.zero_states {
            bindings.insert(node, Tensor::zeros(Shape::d2(batch, self.hidden)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_graph::StashPlan;
    use echo_memory::DeviceMemory;
    use echo_tensor::init::seeded_rng;

    fn run_backend(backend: LstmBackend, seed: u64) -> Tensor {
        let (t, b, h, layers) = (3usize, 2usize, 3usize, 2usize);
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Rnn);
        let stack = LstmStack::build(&mut g, backend, x, t, h, h, layers, "rnn", LayerKind::Rnn);
        let graph = Arc::new(g);
        let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
        let mut exec = Executor::new(graph, StashPlan::stash_all(), mem);
        let mut rng = seeded_rng(seed);
        stack.bind_params(&mut exec, &mut rng).unwrap();
        let mut bindings = HashMap::new();
        let mut data_rng = seeded_rng(999);
        bindings.insert(
            x,
            echo_tensor::init::uniform(Shape::d3(t, b, h), 1.0, &mut data_rng),
        );
        stack.add_zero_state_bindings(b, &mut bindings);
        exec.forward(&bindings, stack.output, Default::default(), None)
            .unwrap()
    }

    #[test]
    fn all_backends_agree_numerically() {
        // Same seed → same parameter initialization order per layer.
        let d = run_backend(LstmBackend::Default, 7);
        let c = run_backend(LstmBackend::CuDnn, 7);
        let e = run_backend(LstmBackend::EcoRnn, 7);
        assert!(d.approx_eq(&c, 1e-5).unwrap(), "Default vs CuDNN");
        assert!(c.approx_eq(&e, 1e-5).unwrap(), "CuDNN vs EcoRNN");
    }

    #[test]
    fn node_counts_reflect_fusion() {
        let count_nodes = |backend| {
            let mut g = Graph::new();
            let x = g.input("x", LayerKind::Rnn);
            LstmStack::build(&mut g, backend, x, 10, 8, 8, 1, "rnn", LayerKind::Rnn);
            g.len()
        };
        let default_nodes = count_nodes(LstmBackend::Default);
        let cudnn_nodes = count_nodes(LstmBackend::CuDnn);
        let eco_nodes = count_nodes(LstmBackend::EcoRnn);
        assert!(default_nodes > cudnn_nodes * 10);
        assert!(eco_nodes <= cudnn_nodes + 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(LstmBackend::EcoRnn.to_string(), "EcoRNN");
        assert_eq!(LstmBackend::ALL.len(), 3);
    }
}
