//! Numeric LSTM cell mathematics shared by all backends.
//!
//! Gate order follows MXNet/cuDNN: input `i`, forget `f`, cell candidate
//! `g`, output `o`:
//!
//! ```text
//! pre = x·Wxᵀ + h_prev·Whᵀ + b                 (pre [B x 4H])
//! i = σ(pre[0:H])   f = σ(pre[H:2H])
//! g = tanh(pre[2H:3H])   o = σ(pre[3H:4H])
//! c = f ⊙ c_prev + i ⊙ g
//! h = o ⊙ tanh(c)
//! ```

use echo_graph::Result;
use echo_tensor::{kernels, reduce, Shape, Tensor};

/// Forward result of one LSTM step: `(h, c, gates)` with `gates [B x 4H]`
/// holding the *post-activation* `i, f, g, o` — exactly what cuDNN's
/// reserved space keeps for the backward pass.
pub fn lstm_step_forward(
    x: &Tensor,
    h_prev: &Tensor,
    c_prev: &Tensor,
    wx: &Tensor,
    wh: &Tensor,
    b: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    let batch = x.shape().as_matrix().0;
    let hidden = c_prev.shape().as_matrix().1;
    let mut pre = x.matmul(wx, false, true)?;
    let rec = h_prev.matmul(wh, false, true)?;
    pre.axpy(1.0, &rec)?;
    reduce::add_bias_rows(&mut pre, b)?;

    let mut gates = Tensor::zeros(Shape::d2(batch, 4 * hidden));
    let mut c = Tensor::zeros(Shape::d2(batch, hidden));
    let mut h = Tensor::zeros(Shape::d2(batch, hidden));
    for bi in 0..batch {
        for hi in 0..hidden {
            let row = bi * 4 * hidden;
            let i = kernels::sigmoid(pre.data()[row + hi]);
            let f = kernels::sigmoid(pre.data()[row + hidden + hi]);
            let g = pre.data()[row + 2 * hidden + hi].tanh();
            let o = kernels::sigmoid(pre.data()[row + 3 * hidden + hi]);
            gates.data_mut()[row + hi] = i;
            gates.data_mut()[row + hidden + hi] = f;
            gates.data_mut()[row + 2 * hidden + hi] = g;
            gates.data_mut()[row + 3 * hidden + hi] = o;
            let cv = f * c_prev.data()[bi * hidden + hi] + i * g;
            c.data_mut()[bi * hidden + hi] = cv;
            h.data_mut()[bi * hidden + hi] = o * cv.tanh();
        }
    }
    Ok((h, c, gates))
}

/// Gradients produced by one LSTM step's backward pass.
#[derive(Debug, Clone)]
pub struct LstmStepGrads {
    /// Gradient w.r.t. the step input `x`.
    pub dx: Tensor,
    /// Gradient w.r.t. the previous hidden state.
    pub dh_prev: Tensor,
    /// Gradient w.r.t. the previous cell state.
    pub dc_prev: Tensor,
    /// Gradient w.r.t. `Wx` (to be accumulated).
    pub dwx: Tensor,
    /// Gradient w.r.t. `Wh` (to be accumulated).
    pub dwh: Tensor,
    /// Gradient w.r.t. the bias (to be accumulated).
    pub db: Tensor,
}

/// Backward pass of one LSTM step from the stashed post-activation gates
/// and the new cell state.
///
/// `dh`/`dc` are the gradients flowing into this step's outputs (`dc` is
/// the backward-in-time accumulation; pass zeros at the last step).
#[allow(clippy::too_many_arguments)]
pub fn lstm_step_backward(
    x: &Tensor,
    h_prev: &Tensor,
    c_prev: &Tensor,
    wx: &Tensor,
    wh: &Tensor,
    gates: &Tensor,
    c_new: &Tensor,
    dh: &Tensor,
    dc_in: &Tensor,
) -> Result<LstmStepGrads> {
    let batch = x.shape().as_matrix().0;
    let hidden = c_prev.shape().as_matrix().1;
    let mut dpre = Tensor::zeros(Shape::d2(batch, 4 * hidden));
    let mut dc_prev = Tensor::zeros(Shape::d2(batch, hidden));

    for bi in 0..batch {
        for hi in 0..hidden {
            let row = bi * 4 * hidden;
            let i = gates.data()[row + hi];
            let f = gates.data()[row + hidden + hi];
            let g = gates.data()[row + 2 * hidden + hi];
            let o = gates.data()[row + 3 * hidden + hi];
            let c = c_new.data()[bi * hidden + hi];
            let tc = c.tanh();
            let dhv = dh.data()[bi * hidden + hi];
            // dc = dh·o·(1 − tanh²c) + upstream dc
            let dc = dhv * o * (1.0 - tc * tc) + dc_in.data()[bi * hidden + hi];
            let d_o = dhv * tc;
            let d_i = dc * g;
            let d_g = dc * i;
            let d_f = dc * c_prev.data()[bi * hidden + hi];
            dc_prev.data_mut()[bi * hidden + hi] = dc * f;
            dpre.data_mut()[row + hi] = d_i * kernels::sigmoid_grad_from_output(i);
            dpre.data_mut()[row + hidden + hi] = d_f * kernels::sigmoid_grad_from_output(f);
            dpre.data_mut()[row + 2 * hidden + hi] = d_g * kernels::tanh_grad_from_output(g);
            dpre.data_mut()[row + 3 * hidden + hi] = d_o * kernels::sigmoid_grad_from_output(o);
        }
    }

    let dx = dpre.matmul(wx, false, false)?;
    let dh_prev = dpre.matmul(wh, false, false)?;
    let dwx = dpre.matmul(x, true, false)?;
    let dwh = dpre.matmul(h_prev, true, false)?;
    let db = reduce::sum_rows(&dpre);
    Ok(LstmStepGrads {
        dx,
        dh_prev,
        dc_prev,
        dwx,
        dwh,
        db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_tensor::init::{seeded_rng, uniform};

    fn setup() -> (Tensor, Tensor, Tensor, Tensor, Tensor, Tensor) {
        let mut rng = seeded_rng(21);
        let (b, h) = (2usize, 3usize);
        (
            uniform(Shape::d2(b, h), 1.0, &mut rng),     // x
            uniform(Shape::d2(b, h), 1.0, &mut rng),     // h_prev
            uniform(Shape::d2(b, h), 1.0, &mut rng),     // c_prev
            uniform(Shape::d2(4 * h, h), 0.7, &mut rng), // wx
            uniform(Shape::d2(4 * h, h), 0.7, &mut rng), // wh
            uniform(Shape::d1(4 * h), 0.3, &mut rng),    // b
        )
    }

    #[test]
    fn forward_respects_gate_bounds() {
        let (x, h0, c0, wx, wh, b) = setup();
        let (h, c, gates) = lstm_step_forward(&x, &h0, &c0, &wx, &wh, &b).unwrap();
        assert_eq!(h.shape(), &Shape::d2(2, 3));
        assert_eq!(c.shape(), &Shape::d2(2, 3));
        // sigmoids in (0,1), tanh in (-1,1)
        for bi in 0..2 {
            for hi in 0..3 {
                let row = bi * 12;
                assert!((0.0..=1.0).contains(&gates.data()[row + hi]));
                assert!((-1.0..=1.0).contains(&gates.data()[row + 6 + hi]));
            }
        }
        // |h| <= 1 since h = o * tanh(c).
        assert!(h.max_abs() <= 1.0);
    }

    #[test]
    fn zero_forget_gate_forgets() {
        // With b_f very negative the forget gate shuts and c ≈ i ⊙ g.
        let (x, h0, _, wx, wh, mut b) = setup();
        let big_c = Tensor::full(Shape::d2(2, 3), 100.0);
        for hi in 3..6 {
            b.data_mut()[hi] = -30.0;
        }
        let (_, c, gates) = lstm_step_forward(&x, &h0, &big_c, &wx, &wh, &b).unwrap();
        for bi in 0..2 {
            for hi in 0..3 {
                let i = gates.data()[bi * 12 + hi];
                let g = gates.data()[bi * 12 + 6 + hi];
                assert!((c.data()[bi * 3 + hi] - i * g).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (x, h0, c0, wx, wh, b) = setup();
        let (h, c, gates) = lstm_step_forward(&x, &h0, &c0, &wx, &wh, &b).unwrap();
        let dh = Tensor::full(h.shape().clone(), 1.0);
        let dc = Tensor::zeros(c.shape().clone());
        let grads = lstm_step_backward(&x, &h0, &c0, &wx, &wh, &gates, &c, &dh, &dc).unwrap();
        // Loss = sum(h).
        let loss = |x: &Tensor, h0: &Tensor, c0: &Tensor, wx: &Tensor, wh: &Tensor, b: &Tensor| {
            lstm_step_forward(x, h0, c0, wx, wh, b).unwrap().0.sum() as f32
        };
        let eps = 1e-3;
        let check = |analytic: &Tensor, param: &Tensor, which: usize, label: &str| {
            for idx in 0..param.len() {
                let mut pp = param.clone();
                pp.data_mut()[idx] += eps;
                let mut pm = param.clone();
                pm.data_mut()[idx] -= eps;
                let (lp, lm) = match which {
                    0 => (
                        loss(&pp, &h0, &c0, &wx, &wh, &b),
                        loss(&pm, &h0, &c0, &wx, &wh, &b),
                    ),
                    1 => (
                        loss(&x, &pp, &c0, &wx, &wh, &b),
                        loss(&x, &pm, &c0, &wx, &wh, &b),
                    ),
                    2 => (
                        loss(&x, &h0, &pp, &wx, &wh, &b),
                        loss(&x, &h0, &pm, &wx, &wh, &b),
                    ),
                    3 => (
                        loss(&x, &h0, &c0, &pp, &wh, &b),
                        loss(&x, &h0, &c0, &pm, &wh, &b),
                    ),
                    4 => (
                        loss(&x, &h0, &c0, &wx, &pp, &b),
                        loss(&x, &h0, &c0, &wx, &pm, &b),
                    ),
                    _ => (
                        loss(&x, &h0, &c0, &wx, &wh, &pp),
                        loss(&x, &h0, &c0, &wx, &wh, &pm),
                    ),
                };
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (analytic.data()[idx] - fd).abs() < 2e-2,
                    "{label}[{idx}]: {} vs {fd}",
                    analytic.data()[idx]
                );
            }
        };
        check(&grads.dx, &x, 0, "dx");
        check(&grads.dh_prev, &h0, 1, "dh_prev");
        check(&grads.dc_prev, &c0, 2, "dc_prev");
        check(&grads.dwx, &wx, 3, "dwx");
        check(&grads.dwh, &wh, 4, "dwh");
        check(&grads.db, &b, 5, "db");
    }
}
