//! Fused full-sequence LSTM operators: the cuDNN-mirroring stack and the
//! EcoRNN layout-optimized layer.

use crate::cell::{lstm_step_backward, lstm_step_forward};
use echo_cachesim::{MatLayout, TiledGemmSpec};
use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{Shape, Tensor};

fn op_err(op: &str, message: String) -> GraphError {
    GraphError::Operator {
        op: op.to_string(),
        message,
    }
}

/// Extra reserved f32 elements per `T·B·H` cell cuDNN's RNN path
/// allocates beyond the mathematically required gates+cells (algorithm
/// workspace, dropout state, weight/IO repacking — cuDNN sizes these
/// conservatively). Calibrated so the NMT-level memory comparison
/// reproduces Figure 15's sign (cuDNN ≈ +7% over Default); see
/// EXPERIMENTS.md for the calibration note.
pub const CUDNN_EXTRA_RESERVE_ELEMS: usize = 40;

fn gemm_input(rows: usize, in_dim: usize, hidden: usize, eco: bool) -> TiledGemmSpec {
    if eco {
        TiledGemmSpec::fc_col_major(rows, in_dim, 4 * hidden)
    } else {
        TiledGemmSpec::fc_row_major(rows, in_dim, 4 * hidden)
    }
}

fn gemm_recurrent(batch: usize, hidden: usize, eco: bool) -> TiledGemmSpec {
    gemm_input(batch, hidden, hidden, eco)
}

/// Per-step `dh_prev = dpre · Wh`: an NN GEMM in both layouts (the
/// backward pointwise kernel is free to emit `dpre` row-major).
fn gemm_dx_step(batch: usize, hidden: usize, eco: bool) -> TiledGemmSpec {
    let _ = eco;
    TiledGemmSpec::new(batch, hidden, 4 * hidden)
}

/// Batched `dX = dpre · Wx` over the whole sequence: NN in both layouts.
fn gemm_dx(rows: usize, in_dim: usize, hidden: usize, eco: bool) -> TiledGemmSpec {
    let _ = eco;
    TiledGemmSpec::new(rows, in_dim, 4 * hidden)
}

/// Weight gradient: `dW = dpreᵀ · X`. This is where the `[T, H, B]` layout
/// pays off in the backward pass: `X` is already stored transposed, so
/// `dWᵀ = Xᵀ · dpre` streams every operand contiguously (NN), while the
/// framework-default layout is stuck with a TN GEMM that scans `dpreᵀ`
/// against its storage order.
fn gemm_dw(rows: usize, in_dim: usize, hidden: usize, eco: bool) -> TiledGemmSpec {
    if eco {
        TiledGemmSpec::new(in_dim, 4 * hidden, rows)
    } else {
        TiledGemmSpec {
            layout_a: MatLayout::ColMajor,
            ..TiledGemmSpec::new(4 * hidden, in_dim, rows)
        }
    }
}

/// Numeric forward over a whole sequence for one layer. Returns
/// `(h_seq, gates_seq, cells_seq)`.
fn layer_forward(
    x_seq: &Tensor,
    wx: &Tensor,
    wh: &Tensor,
    b: &Tensor,
    hidden: usize,
) -> Result<(Tensor, Tensor, Tensor)> {
    let t = x_seq.shape().dim(0);
    let batch = x_seq.shape().dim(1);
    let mut h_seq = Tensor::zeros(Shape::d3(t, batch, hidden));
    let mut gates_seq = Tensor::zeros(Shape::d3(t, batch, 4 * hidden));
    let mut cells_seq = Tensor::zeros(Shape::d3(t, batch, hidden));
    let mut h = Tensor::zeros(Shape::d2(batch, hidden));
    let mut c = Tensor::zeros(Shape::d2(batch, hidden));
    for ti in 0..t {
        let x_t = x_seq.index_axis0(ti)?;
        let (h_new, c_new, gates) = lstm_step_forward(&x_t, &h, &c, wx, wh, b)?;
        h_seq.set_axis0(ti, &h_new)?;
        gates_seq.set_axis0(ti, &gates)?;
        cells_seq.set_axis0(ti, &c_new)?;
        h = h_new;
        c = c_new;
    }
    Ok((h_seq, gates_seq, cells_seq))
}

/// Numeric BPTT over a whole sequence for one layer. Returns
/// `(dx_seq, dwx, dwh, db)`.
#[allow(clippy::too_many_arguments)] // mirrors the BPTT math; grouping would add noise
fn layer_backward(
    x_seq: &Tensor,
    h_seq: &Tensor,
    gates_seq: &Tensor,
    cells_seq: &Tensor,
    wx: &Tensor,
    wh: &Tensor,
    dy: &Tensor,
    hidden: usize,
) -> Result<(Tensor, Tensor, Tensor, Tensor)> {
    let t = x_seq.shape().dim(0);
    let batch = x_seq.shape().dim(1);
    let mut dx_seq = Tensor::zeros(x_seq.shape().clone());
    let mut dwx = Tensor::zeros(wx.shape().clone());
    let mut dwh = Tensor::zeros(wh.shape().clone());
    let mut db = Tensor::zeros(Shape::d1(4 * hidden));
    let zeros_bh = Tensor::zeros(Shape::d2(batch, hidden));
    let mut carry_dh = Tensor::zeros(Shape::d2(batch, hidden));
    let mut carry_dc = Tensor::zeros(Shape::d2(batch, hidden));
    for ti in (0..t).rev() {
        let x_t = x_seq.index_axis0(ti)?;
        let h_prev = if ti > 0 {
            h_seq.index_axis0(ti - 1)?
        } else {
            zeros_bh.clone()
        };
        let c_prev = if ti > 0 {
            cells_seq.index_axis0(ti - 1)?
        } else {
            zeros_bh.clone()
        };
        let gates = gates_seq.index_axis0(ti)?;
        let c_new = cells_seq.index_axis0(ti)?;
        let mut dh = dy.index_axis0(ti)?;
        dh.axpy(1.0, &carry_dh)?;
        let grads = lstm_step_backward(
            &x_t, &h_prev, &c_prev, wx, wh, &gates, &c_new, &dh, &carry_dc,
        )?;
        dx_seq.set_axis0(ti, &grads.dx)?;
        dwx.axpy(1.0, &grads.dwx)?;
        dwh.axpy(1.0, &grads.dwh)?;
        db.axpy(1.0, &grads.db)?;
        carry_dh = grads.dh_prev;
        carry_dc = grads.dc_prev;
    }
    Ok((dx_seq, dwx, dwh, db))
}

/// One fused LSTM layer: `[T, B, In] → [T, B, H]` as a single graph node,
/// with EcoRNN's `[T, H, B]` data layout optionally applied to its GEMMs.
///
/// Inputs: `x_seq, Wx [4H x In], Wh [4H x H], b [4H]`. The forward pass
/// launches one batched input GEMM, then one recurrent GEMM and one fused
/// pointwise kernel per step — the structure cuDNN's (and Appleyard's)
/// fused LSTM uses, which eliminates the Default backend's launch storm.
#[derive(Debug, Clone)]
pub struct FusedLstmLayer {
    hidden: usize,
    eco_layout: bool,
}

impl FusedLstmLayer {
    /// A fused layer using the framework-default row-major layout.
    pub fn new(hidden: usize) -> Self {
        FusedLstmLayer {
            hidden,
            eco_layout: false,
        }
    }

    /// A fused layer using EcoRNN's `[T, H, B]` layout (builder style).
    #[must_use]
    pub fn with_eco_layout(mut self) -> Self {
        self.eco_layout = true;
        self
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn seq_dims(&self, x: &Shape) -> Result<(usize, usize, usize)> {
        if x.rank() != 3 {
            return Err(op_err("fused_lstm", format!("x must be [T,B,In], got {x}")));
        }
        Ok((x.dim(0), x.dim(1), x.dim(2)))
    }
}

impl Operator for FusedLstmLayer {
    fn name(&self) -> &str {
        if self.eco_layout {
            "ecornn_lstm_layer"
        } else {
            "fused_lstm_layer"
        }
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::FullyConnected
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let (t, b, in_dim) = self.seq_dims(inputs[0])?;
        let (o, win) = inputs[1].as_matrix();
        if o != 4 * self.hidden || win != in_dim {
            return Err(op_err(
                "fused_lstm",
                format!("Wx {} incompatible with input {}", inputs[1], inputs[0]),
            ));
        }
        Ok(Shape::d3(t, b, self.hidden))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let (h_seq, gates, cells) =
            layer_forward(inputs[0], inputs[1], inputs[2], inputs[3], self.hidden)?;
        Ok((h_seq, vec![gates, cells]))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x_seq = inputs[0].expect("fused lstm stashes inputs");
        let wx = inputs[1].expect("fused lstm stashes inputs");
        let wh = inputs[2].expect("fused lstm stashes inputs");
        let h_seq = output.expect("fused lstm stashes its output");
        let (dx, dwx, dwh, db) =
            layer_backward(x_seq, h_seq, &saved[0], &saved[1], wx, wh, dy, self.hidden)?;
        Ok(vec![Some(dx), Some(dwx), Some(dwh), Some(db)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::BOTH
    }
    fn saved_bytes(&self, inputs: &[&Shape], _output: &Shape) -> u64 {
        let Ok((t, b, _)) = self.seq_dims(inputs[0]) else {
            return 0;
        };
        // gates [T,B,4H] + cells [T,B,H]
        (t * b * 5 * self.hidden * 4) as u64
    }
    fn layout_variants(&self) -> Vec<std::sync::Arc<dyn Operator + Send + Sync>> {
        // Standard and eco layouts compute identical bits; only the
        // simulated GEMM geometry (and the eco transpose kernels) differ.
        let other = if self.eco_layout {
            FusedLstmLayer::new(self.hidden)
        } else {
            FusedLstmLayer::new(self.hidden).with_eco_layout()
        };
        vec![std::sync::Arc::new(other)]
    }
    fn forward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((t, b, in_dim)) = self.seq_dims(inputs[0]) else {
            return Vec::new();
        };
        let mut launches = Vec::new();
        if self.eco_layout {
            launches.push(KernelLaunch::kernel(
                "lstm_layout_tbh_to_thb",
                KernelCategory::Transpose,
                KernelCost::elementwise(t * b * in_dim, 2),
            ));
        }
        launches.push(KernelLaunch::gemm(
            "sgemm_lstm_input",
            gemm_input(t * b, in_dim, self.hidden, self.eco_layout),
        ));
        for _ in 0..t {
            launches.push(KernelLaunch::gemm(
                "sgemm_lstm_recurrent",
                gemm_recurrent(b, self.hidden, self.eco_layout),
            ));
            launches.push(KernelLaunch::kernel(
                "lstm_pointwise_fused",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * 4 * self.hidden, 3),
            ));
        }
        launches
    }
    fn backward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((t, b, in_dim)) = self.seq_dims(inputs[0]) else {
            return Vec::new();
        };
        let mut launches = Vec::new();
        for _ in 0..t {
            launches.push(KernelLaunch::kernel(
                "lstm_pointwise_fused_bwd",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * 4 * self.hidden, 4),
            ));
            launches.push(KernelLaunch::gemm(
                "sgemm_lstm_dh",
                gemm_dx_step(b, self.hidden, self.eco_layout),
            ));
        }
        // Batched over the whole sequence.
        launches.push(KernelLaunch::gemm(
            "sgemm_lstm_dx",
            gemm_dx(t * b, in_dim, self.hidden, self.eco_layout),
        ));
        launches.push(KernelLaunch::gemm(
            "sgemm_lstm_dwx",
            gemm_dw(t * b, in_dim, self.hidden, self.eco_layout),
        ));
        launches.push(KernelLaunch::gemm(
            "sgemm_lstm_dwh",
            gemm_dw(t * b, self.hidden, self.hidden, self.eco_layout),
        ));
        launches
    }
}

/// A multi-layer cuDNN-style LSTM stack as a single graph node, with
/// Appleyard-style wavefront overlap across layers.
///
/// Inputs: `x_seq, (Wx, Wh, b) × layers`. Output: the last layer's hidden
/// sequence. On the device plane the stack executes `T + L − 1` wavefronts;
/// each wavefront fuses the recurrent GEMMs of all active layers into one
/// larger GEMM — fewer, bigger launches, which is how cuDNN stays
/// competitive at 4 layers (Figure 20) despite its row-major layout.
#[derive(Debug, Clone)]
pub struct CudnnLstmStack {
    hidden: usize,
    layers: usize,
}

impl CudnnLstmStack {
    /// A cuDNN-style stack of `layers` LSTM layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(hidden: usize, layers: usize) -> Self {
        assert!(layers > 0, "stack needs at least one layer");
        CudnnLstmStack { hidden, layers }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    fn seq_dims(&self, x: &Shape) -> Result<(usize, usize, usize)> {
        if x.rank() != 3 {
            return Err(op_err("cudnn_lstm", format!("x must be [T,B,In], got {x}")));
        }
        Ok((x.dim(0), x.dim(1), x.dim(2)))
    }
}

impl Operator for CudnnLstmStack {
    fn name(&self) -> &str {
        "cudnn_lstm_stack"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::FullyConnected
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        if inputs.len() != 1 + 3 * self.layers {
            return Err(op_err(
                "cudnn_lstm",
                format!(
                    "expected {} inputs (x + 3 per layer), got {}",
                    1 + 3 * self.layers,
                    inputs.len()
                ),
            ));
        }
        let (t, b, _) = self.seq_dims(inputs[0])?;
        Ok(Shape::d3(t, b, self.hidden))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let mut saved = Vec::new();
        let mut x = inputs[0].clone();
        for l in 0..self.layers {
            let (h_seq, gates, cells) = layer_forward(
                &x,
                inputs[1 + 3 * l],
                inputs[2 + 3 * l],
                inputs[3 + 3 * l],
                self.hidden,
            )?;
            saved.push(gates);
            saved.push(cells);
            if l + 1 < self.layers {
                // Inter-layer activations are part of cuDNN's reserve.
                saved.push(h_seq.clone());
            }
            x = h_seq;
        }
        Ok((x, saved))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x0 = inputs[0].expect("cudnn lstm stashes inputs");
        let mut grads: Vec<Option<Tensor>> = vec![None; 1 + 3 * self.layers];
        let mut dy = dy.clone();
        for l in (0..self.layers).rev() {
            let gates = &saved[idx_gates(l, self.layers)];
            let cells = &saved[idx_cells(l, self.layers)];
            let h_seq_owned;
            let h_seq: &Tensor = if l + 1 < self.layers {
                &saved[idx_hidden(l, self.layers)]
            } else {
                h_seq_owned = output.expect("cudnn lstm stashes output").clone();
                &h_seq_owned
            };
            let x_l_owned;
            let x_l: &Tensor = if l == 0 {
                x0
            } else {
                x_l_owned = saved[idx_hidden(l - 1, self.layers)].clone();
                &x_l_owned
            };
            let wx = inputs[1 + 3 * l].expect("stash inputs");
            let wh = inputs[2 + 3 * l].expect("stash inputs");
            let (dx, dwx, dwh, db) =
                layer_backward(x_l, h_seq, gates, cells, wx, wh, &dy, self.hidden)?;
            grads[1 + 3 * l] = Some(dwx);
            grads[2 + 3 * l] = Some(dwh);
            grads[3 + 3 * l] = Some(db);
            dy = dx;
        }
        grads[0] = Some(dy);
        Ok(grads)
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::BOTH
    }
    fn saved_bytes(&self, inputs: &[&Shape], _output: &Shape) -> u64 {
        let Ok((t, b, _)) = self.seq_dims(inputs[0]) else {
            return 0;
        };
        let per_layer_math = t * b * 5 * self.hidden; // gates + cells
        let inter = t * b * self.hidden * (self.layers - 1);
        let extra = t * b * self.hidden * CUDNN_EXTRA_RESERVE_ELEMS * self.layers;
        ((per_layer_math * self.layers + inter + extra) * 4) as u64
    }
    fn forward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((t, b, in_dim)) = self.seq_dims(inputs[0]) else {
            return Vec::new();
        };
        let mut launches = vec![KernelLaunch::gemm(
            "sgemm_cudnn_input",
            gemm_input(t * b, in_dim, self.hidden, false),
        )];
        // Wavefront schedule: at wavefront w the active layers are those
        // with 0 <= w - l < t; their recurrent GEMMs fuse into one call.
        for w in 0..(t + self.layers - 1) {
            let active = (0..self.layers).filter(|&l| w >= l && w - l < t).count();
            if active == 0 {
                continue;
            }
            launches.push(KernelLaunch::gemm(
                "sgemm_cudnn_recurrent_wave",
                gemm_recurrent(b * active, self.hidden, false),
            ));
            launches.push(KernelLaunch::kernel(
                "cudnn_lstm_pointwise",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * active * 4 * self.hidden, 3),
            ));
        }
        launches
    }
    fn backward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((t, b, in_dim)) = self.seq_dims(inputs[0]) else {
            return Vec::new();
        };
        let mut launches = Vec::new();
        for w in 0..(t + self.layers - 1) {
            let active = (0..self.layers).filter(|&l| w >= l && w - l < t).count();
            if active == 0 {
                continue;
            }
            launches.push(KernelLaunch::kernel(
                "cudnn_lstm_pointwise_bwd",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * active * 4 * self.hidden, 4),
            ));
            launches.push(KernelLaunch::gemm(
                "sgemm_cudnn_dh_wave",
                gemm_dx_step(b * active, self.hidden, false),
            ));
        }
        launches.push(KernelLaunch::gemm(
            "sgemm_cudnn_dx",
            gemm_dx(t * b, in_dim, self.hidden, false),
        ));
        for l in 0..self.layers {
            let dim = if l == 0 { in_dim } else { self.hidden };
            launches.push(KernelLaunch::gemm(
                "sgemm_cudnn_dwx",
                gemm_dw(t * b, dim, self.hidden, false),
            ));
            launches.push(KernelLaunch::gemm(
                "sgemm_cudnn_dwh",
                gemm_dw(t * b, self.hidden, self.hidden, false),
            ));
        }
        launches
    }
}

fn idx_gates(layer: usize, layers: usize) -> usize {
    // Layers below the last contribute 3 saved tensors, the last 2.
    let _ = layers;
    layer * 3
}

fn idx_cells(layer: usize, layers: usize) -> usize {
    let _ = layers;
    layer * 3 + 1
}

fn idx_hidden(layer: usize, layers: usize) -> usize {
    debug_assert!(layer + 1 < layers);
    layer * 3 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_tensor::init::{seeded_rng, uniform};

    fn layer_inputs(t: usize, b: usize, h: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = seeded_rng(seed);
        vec![
            uniform(Shape::d3(t, b, h), 1.0, &mut rng),
            uniform(Shape::d2(4 * h, h), 0.5, &mut rng),
            uniform(Shape::d2(4 * h, h), 0.5, &mut rng),
            uniform(Shape::d1(4 * h), 0.2, &mut rng),
        ]
    }

    #[test]
    fn fused_layer_matches_step_by_step() {
        let (t, b, h) = (4, 2, 3);
        let ins = layer_inputs(t, b, h, 1);
        let refs: Vec<&Tensor> = ins.iter().collect();
        let layer = FusedLstmLayer::new(h);
        let (h_seq, saved) = layer.forward(&refs).unwrap();
        assert_eq!(h_seq.shape(), &Shape::d3(t, b, h));
        assert_eq!(saved.len(), 2);

        // Manual per-step recomputation must agree.
        let mut hh = Tensor::zeros(Shape::d2(b, h));
        let mut cc = Tensor::zeros(Shape::d2(b, h));
        for ti in 0..t {
            let x_t = ins[0].index_axis0(ti).unwrap();
            let (h_new, c_new, _) =
                lstm_step_forward(&x_t, &hh, &cc, &ins[1], &ins[2], &ins[3]).unwrap();
            assert_eq!(h_seq.index_axis0(ti).unwrap(), h_new);
            hh = h_new;
            cc = c_new;
        }
    }

    #[test]
    fn fused_layer_backward_matches_finite_difference() {
        let (t, b, h) = (3, 2, 2);
        let ins = layer_inputs(t, b, h, 2);
        let refs: Vec<&Tensor> = ins.iter().collect();
        let layer = FusedLstmLayer::new(h);
        let (h_seq, saved) = layer.forward(&refs).unwrap();
        let dy = Tensor::full(h_seq.shape().clone(), 1.0);
        let opt_refs: Vec<Option<&Tensor>> = ins.iter().map(Some).collect();
        let grads = layer
            .backward(&opt_refs, Some(&h_seq), &saved, &dy)
            .unwrap();
        let loss = |ins: &[Tensor]| {
            let refs: Vec<&Tensor> = ins.iter().collect();
            layer.forward(&refs).unwrap().0.sum() as f32
        };
        let eps = 1e-3;
        for (slot, label) in [(1usize, "dwx"), (2, "dwh"), (3, "db"), (0, "dx")] {
            let g = grads[slot].as_ref().unwrap();
            for idx in (0..ins[slot].len()).step_by(3) {
                let mut plus = ins.to_vec();
                plus[slot].data_mut()[idx] += eps;
                let mut minus = ins.to_vec();
                minus[slot].data_mut()[idx] -= eps;
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (g.data()[idx] - fd).abs() < 3e-2,
                    "{label}[{idx}]: {} vs {fd}",
                    g.data()[idx]
                );
            }
        }
    }

    #[test]
    fn eco_layout_changes_launches_only() {
        let (t, b, h) = (4, 2, 3);
        let ins = layer_inputs(t, b, h, 3);
        let refs: Vec<&Tensor> = ins.iter().collect();
        let plain = FusedLstmLayer::new(h);
        let eco = FusedLstmLayer::new(h).with_eco_layout();
        assert_eq!(
            plain.forward(&refs).unwrap().0,
            eco.forward(&refs).unwrap().0
        );
        let shapes: Vec<&Shape> = ins.iter().map(|t| t.shape()).collect();
        let out = plain.infer_shape(&shapes).unwrap();
        assert_ne!(
            plain.forward_launches(&shapes, &out),
            eco.forward_launches(&shapes, &out)
        );
    }

    #[test]
    fn cudnn_stack_matches_chained_fused_layers() {
        let (t, b, h, layers) = (3, 2, 3, 2);
        let mut rng = seeded_rng(4);
        let x = uniform(Shape::d3(t, b, h), 1.0, &mut rng);
        let mut params = Vec::new();
        for _ in 0..layers {
            params.push(uniform(Shape::d2(4 * h, h), 0.5, &mut rng));
            params.push(uniform(Shape::d2(4 * h, h), 0.5, &mut rng));
            params.push(uniform(Shape::d1(4 * h), 0.2, &mut rng));
        }
        let mut stack_inputs: Vec<&Tensor> = vec![&x];
        stack_inputs.extend(params.iter());
        let stack = CudnnLstmStack::new(h, layers);
        let (out_stack, saved) = stack.forward(&stack_inputs).unwrap();
        assert_eq!(saved.len(), 3 * layers - 1);

        // Chain of single fused layers.
        let layer = FusedLstmLayer::new(h);
        let (h0, _) = layer
            .forward(&[&x, &params[0], &params[1], &params[2]])
            .unwrap();
        let (h1, _) = layer
            .forward(&[&h0, &params[3], &params[4], &params[5]])
            .unwrap();
        assert!(out_stack.approx_eq(&h1, 1e-6).unwrap());
    }

    #[test]
    fn cudnn_stack_backward_matches_finite_difference() {
        let (t, b, h, layers) = (2, 1, 2, 2);
        let mut rng = seeded_rng(5);
        let x = uniform(Shape::d3(t, b, h), 1.0, &mut rng);
        let mut all: Vec<Tensor> = vec![x];
        for _ in 0..layers {
            all.push(uniform(Shape::d2(4 * h, h), 0.6, &mut rng));
            all.push(uniform(Shape::d2(4 * h, h), 0.6, &mut rng));
            all.push(uniform(Shape::d1(4 * h), 0.2, &mut rng));
        }
        let stack = CudnnLstmStack::new(h, layers);
        let refs: Vec<&Tensor> = all.iter().collect();
        let (out, saved) = stack.forward(&refs).unwrap();
        let dy = Tensor::full(out.shape().clone(), 1.0);
        let opt: Vec<Option<&Tensor>> = all.iter().map(Some).collect();
        let grads = stack.backward(&opt, Some(&out), &saved, &dy).unwrap();
        let loss = |all: &[Tensor]| {
            let refs: Vec<&Tensor> = all.iter().collect();
            stack.forward(&refs).unwrap().0.sum() as f32
        };
        let eps = 1e-3;
        for slot in 0..all.len() {
            let g = grads[slot].as_ref().unwrap();
            for idx in (0..all[slot].len()).step_by(2) {
                let mut plus = all.to_vec();
                plus[slot].data_mut()[idx] += eps;
                let mut minus = all.to_vec();
                minus[slot].data_mut()[idx] -= eps;
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (g.data()[idx] - fd).abs() < 3e-2,
                    "slot {slot} idx {idx}: {} vs {fd}",
                    g.data()[idx]
                );
            }
        }
    }

    #[test]
    fn wavefront_reduces_launch_count() {
        let (t, b, h, layers) = (50, 32, 256, 4);
        let x = Shape::d3(t, b, h);
        let w = Shape::d2(4 * h, h);
        let bias = Shape::d1(4 * h);
        let mut shapes: Vec<&Shape> = vec![&x];
        for _ in 0..layers {
            shapes.push(&w);
            shapes.push(&w);
            shapes.push(&bias);
        }
        let stack = CudnnLstmStack::new(h, layers);
        let out = stack.infer_shape(&shapes).unwrap();
        let stack_launches = stack.forward_launches(&shapes, &out).len();
        // Four chained single layers would launch 4 * (1 + 2T) kernels.
        let per_layer = FusedLstmLayer::new(h)
            .forward_launches(&[&x, &w, &w, &bias], &out)
            .len();
        assert!(
            stack_launches < layers * per_layer * 2 / 3,
            "wavefront {stack_launches} vs chained {}",
            layers * per_layer
        );
    }
}
