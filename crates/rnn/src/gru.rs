//! A fused GRU step — the paper's §4.2 generalization target: the data
//! layout optimization applies to any cell whose fully-connected layers
//! are skewed, and Figure 9(b) demonstrates it on GRU-shaped GEMMs
//! (`W [3H x H]`, 3 gates instead of 4).
//!
//! Gate order follows cuDNN: reset `r`, update `z`, candidate `n`:
//!
//! ```text
//! r = σ(x·Wxᵣ + h·Whᵣ + bᵣ)
//! z = σ(x·Wx_z + h·Wh_z + b_z)
//! n = tanh(x·Wxₙ + r ⊙ (h·Whₙ + bₙ))
//! h' = (1 − z) ⊙ n + z ⊙ h
//! ```

use echo_cachesim::TiledGemmSpec;
use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{kernels, reduce, MatrixLayout, Shape, Tensor};

/// One fused GRU step.
///
/// Inputs: `x [B x In], h_prev [B x H], Wx [3H x In], Wh [3H x H],
/// b [6H]` (the input-side biases in `b[0..3H]`, the hidden-side biases in
/// `b[3H..6H]`, matching cuDNN's double-bias layout). Output: the new
/// hidden state `[B x H]`.
#[derive(Debug, Clone)]
pub struct GruStep {
    hidden: usize,
    layout: MatrixLayout,
}

impl GruStep {
    /// A GRU step with the framework-default row-major GEMMs.
    pub fn new(hidden: usize) -> Self {
        GruStep {
            hidden,
            layout: MatrixLayout::RowMajor,
        }
    }

    /// Uses the EcoRNN column-major GEMM formulation (builder style).
    #[must_use]
    pub fn with_layout(mut self, layout: MatrixLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn dims(&self, inputs: &[&Shape]) -> Result<(usize, usize)> {
        if inputs.len() != 5 {
            return Err(GraphError::Operator {
                op: "gru_step".to_string(),
                message: format!("expected 5 inputs, got {}", inputs.len()),
            });
        }
        let (b, in_dim) = inputs[0].as_matrix();
        let (bh, h) = inputs[1].as_matrix();
        if bh != b || h != self.hidden || inputs[4].num_elements() != 6 * self.hidden {
            return Err(GraphError::Operator {
                op: "gru_step".to_string(),
                message: format!(
                    "inconsistent shapes: x {}, h {}, b {}",
                    inputs[0], inputs[1], inputs[4]
                ),
            });
        }
        Ok((b, in_dim))
    }

    /// Numeric forward; returns `(h_new, saved)` where `saved` packs
    /// `[r, z, n, hh_n]` (`hh_n` = the pre-reset hidden contribution of
    /// the candidate gate, needed by backward).
    fn step(
        &self,
        x: &Tensor,
        h_prev: &Tensor,
        wx: &Tensor,
        wh: &Tensor,
        bias: &Tensor,
    ) -> Result<(Tensor, Tensor)> {
        let h = self.hidden;
        let batch = x.shape().as_matrix().0;
        let mut gx = x.matmul(wx, false, true)?; // [B x 3H]
        let mut gh = h_prev.matmul(wh, false, true)?; // [B x 3H]
        let bx = Tensor::from_vec(Shape::d1(3 * h), bias.data()[..3 * h].to_vec())?;
        let bh = Tensor::from_vec(Shape::d1(3 * h), bias.data()[3 * h..].to_vec())?;
        reduce::add_bias_rows(&mut gx, &bx)?;
        reduce::add_bias_rows(&mut gh, &bh)?;

        let mut h_new = Tensor::zeros(Shape::d2(batch, h));
        let mut saved = Tensor::zeros(Shape::d3(4, batch, h));
        for bi in 0..batch {
            for hi in 0..h {
                let row = bi * 3 * h;
                let r = kernels::sigmoid(gx.data()[row + hi] + gh.data()[row + hi]);
                let z = kernels::sigmoid(gx.data()[row + h + hi] + gh.data()[row + h + hi]);
                let hh_n = gh.data()[row + 2 * h + hi];
                let n = (gx.data()[row + 2 * h + hi] + r * hh_n).tanh();
                let hp = h_prev.data()[bi * h + hi];
                h_new.data_mut()[bi * h + hi] = (1.0 - z) * n + z * hp;
                let base = bi * h + hi;
                saved.data_mut()[base] = r;
                saved.data_mut()[batch * h + base] = z;
                saved.data_mut()[2 * batch * h + base] = n;
                saved.data_mut()[3 * batch * h + base] = hh_n;
            }
        }
        Ok((h_new, saved))
    }
}

impl Operator for GruStep {
    fn name(&self) -> &str {
        "gru_step"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::FullyConnected
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let (b, _) = self.dims(inputs)?;
        Ok(Shape::d2(b, self.hidden))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let (h_new, saved) = self.step(inputs[0], inputs[1], inputs[2], inputs[3], inputs[4])?;
        Ok((h_new, vec![saved]))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x = inputs[0].expect("gru stashes inputs");
        let h_prev = inputs[1].expect("gru stashes inputs");
        let wx = inputs[2].expect("gru stashes inputs");
        let wh = inputs[3].expect("gru stashes inputs");
        let h = self.hidden;
        let batch = x.shape().as_matrix().0;
        let s = &saved[0];
        let at = |g: usize, bi: usize, hi: usize| s.data()[g * batch * h + bi * h + hi];

        // Gradients w.r.t. the two pre-activation triples.
        let mut dgx = Tensor::zeros(Shape::d2(batch, 3 * h));
        let mut dgh = Tensor::zeros(Shape::d2(batch, 3 * h));
        let mut dh_prev = Tensor::zeros(Shape::d2(batch, h));
        for bi in 0..batch {
            for hi in 0..h {
                let (r, z, n, hh_n) = (at(0, bi, hi), at(1, bi, hi), at(2, bi, hi), at(3, bi, hi));
                let g = dy.data()[bi * h + hi];
                let hp = h_prev.data()[bi * h + hi];
                let dn = g * (1.0 - z);
                let dz = g * (hp - n);
                let dpre_n = dn * kernels::tanh_grad_from_output(n);
                let dr = dpre_n * hh_n;
                let dpre_r = dr * kernels::sigmoid_grad_from_output(r);
                let dpre_z = dz * kernels::sigmoid_grad_from_output(z);
                let row = bi * 3 * h;
                dgx.data_mut()[row + hi] = dpre_r;
                dgx.data_mut()[row + h + hi] = dpre_z;
                dgx.data_mut()[row + 2 * h + hi] = dpre_n;
                dgh.data_mut()[row + hi] = dpre_r;
                dgh.data_mut()[row + h + hi] = dpre_z;
                dgh.data_mut()[row + 2 * h + hi] = dpre_n * r;
                dh_prev.data_mut()[bi * h + hi] = g * z;
            }
        }
        let dx = dgx.matmul(wx, false, false)?;
        dh_prev.axpy(1.0, &dgh.matmul(wh, false, false)?)?;
        let dwx = dgx.matmul(x, true, false)?;
        let dwh = dgh.matmul(h_prev, true, false)?;
        let dbx = reduce::sum_rows(&dgx);
        let dbh = reduce::sum_rows(&dgh);
        let db = Tensor::concat_axis0(&[&dbx, &dbh])?.reshape(Shape::d1(6 * h))?;
        Ok(vec![
            Some(dx),
            Some(dh_prev),
            Some(dwx),
            Some(dwh),
            Some(db),
        ])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn saved_bytes(&self, inputs: &[&Shape], _output: &Shape) -> u64 {
        let Ok((b, _)) = self.dims(inputs) else {
            return 0;
        };
        (4 * b * self.hidden * 4) as u64
    }
    fn layout_variants(&self) -> Vec<std::sync::Arc<dyn Operator + Send + Sync>> {
        // Numerics are layout-independent (the GEMM layout only changes
        // the simulated tiling), so the other layout is a legal variant.
        let other = match self.layout {
            MatrixLayout::RowMajor => MatrixLayout::ColMajor,
            MatrixLayout::ColMajor => MatrixLayout::RowMajor,
        };
        vec![std::sync::Arc::new(self.clone().with_layout(other))]
    }
    fn forward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((b, in_dim)) = self.dims(inputs) else {
            return Vec::new();
        };
        let gemm = |rows: usize, k: usize| match self.layout {
            MatrixLayout::RowMajor => TiledGemmSpec::fc_row_major(rows, k, 3 * self.hidden),
            MatrixLayout::ColMajor => TiledGemmSpec::fc_col_major(rows, k, 3 * self.hidden),
        };
        vec![
            KernelLaunch::gemm("sgemm_gru_input", gemm(b, in_dim)),
            KernelLaunch::gemm("sgemm_gru_recurrent", gemm(b, self.hidden)),
            KernelLaunch::kernel(
                "gru_pointwise",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * 3 * self.hidden, 3),
            ),
        ]
    }
    fn backward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((b, in_dim)) = self.dims(inputs) else {
            return Vec::new();
        };
        vec![
            KernelLaunch::kernel(
                "gru_pointwise_bwd",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * 3 * self.hidden, 4),
            ),
            KernelLaunch::gemm(
                "sgemm_gru_dx",
                TiledGemmSpec::new(b, in_dim, 3 * self.hidden),
            ),
            KernelLaunch::gemm(
                "sgemm_gru_dh",
                TiledGemmSpec::new(b, self.hidden, 3 * self.hidden),
            ),
            KernelLaunch::gemm(
                "sgemm_gru_dw",
                TiledGemmSpec::new(3 * self.hidden, in_dim + self.hidden, b),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_tensor::init::{seeded_rng, uniform};

    fn setup(b: usize, h: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = seeded_rng(seed);
        vec![
            uniform(Shape::d2(b, h), 1.0, &mut rng),     // x
            uniform(Shape::d2(b, h), 1.0, &mut rng),     // h_prev
            uniform(Shape::d2(3 * h, h), 0.6, &mut rng), // wx
            uniform(Shape::d2(3 * h, h), 0.6, &mut rng), // wh
            uniform(Shape::d1(6 * h), 0.2, &mut rng),    // b
        ]
    }

    #[test]
    fn update_gate_interpolates() {
        // With z -> 1 (huge update bias on both sides), h' ≈ h_prev.
        let (b, h) = (2, 3);
        let mut ins = setup(b, h, 1);
        for hi in 0..h {
            ins[4].data_mut()[h + hi] = 30.0; // input-side z bias
            ins[4].data_mut()[4 * h + hi] = 30.0; // hidden-side z bias
        }
        let refs: Vec<&Tensor> = ins.iter().collect();
        let (h_new, _) = GruStep::new(h).forward(&refs).unwrap();
        assert!(h_new.approx_eq(&ins[1], 1e-4).unwrap());
    }

    #[test]
    fn output_is_bounded_interpolation() {
        let ins = setup(3, 4, 2);
        let refs: Vec<&Tensor> = ins.iter().collect();
        let (h_new, saved) = GruStep::new(4).forward(&refs).unwrap();
        assert_eq!(saved[0].shape(), &Shape::d3(4, 3, 4));
        // h' is an interpolation of n in (-1,1) and h_prev.
        for (v, &hp) in h_new.data().iter().zip(ins[1].data()) {
            assert!(v.abs() <= hp.abs().max(1.0) + 1e-5);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (b, h) = (2, 2);
        let ins = setup(b, h, 3);
        let op = GruStep::new(h);
        let refs: Vec<&Tensor> = ins.iter().collect();
        let (out, saved) = op.forward(&refs).unwrap();
        let dy = Tensor::full(out.shape().clone(), 1.0);
        let opt: Vec<Option<&Tensor>> = ins.iter().map(Some).collect();
        let grads = op.backward(&opt, Some(&out), &saved, &dy).unwrap();
        let loss = |ins: &[Tensor]| {
            let refs: Vec<&Tensor> = ins.iter().collect();
            op.forward(&refs).unwrap().0.sum() as f32
        };
        let eps = 1e-3;
        for slot in 0..ins.len() {
            let g = grads[slot].as_ref().unwrap();
            for idx in 0..ins[slot].len() {
                let mut plus = ins.to_vec();
                plus[slot].data_mut()[idx] += eps;
                let mut minus = ins.to_vec();
                minus[slot].data_mut()[idx] -= eps;
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (g.data()[idx] - fd).abs() < 2e-2,
                    "slot {slot} idx {idx}: {} vs {fd}",
                    g.data()[idx]
                );
            }
        }
    }

    #[test]
    fn layout_changes_launches_only() {
        let ins = setup(2, 3, 4);
        let shapes: Vec<&Shape> = ins.iter().map(|t| t.shape()).collect();
        let row = GruStep::new(3);
        let col = GruStep::new(3).with_layout(MatrixLayout::ColMajor);
        let out = row.infer_shape(&shapes).unwrap();
        assert_ne!(
            row.forward_launches(&shapes, &out),
            col.forward_launches(&shapes, &out)
        );
        let refs: Vec<&Tensor> = ins.iter().collect();
        assert_eq!(row.forward(&refs).unwrap().0, col.forward(&refs).unwrap().0);
    }
}
