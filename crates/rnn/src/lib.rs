//! LSTM RNN layers with the three backends the paper compares, plus the
//! autotuning microbenchmark that picks between them.
//!
//! * [`backend::LstmBackend::Default`] — MXNet's unfused implementation:
//!   every slice, activation and element-wise op of every time step is its
//!   own kernel. Numerically identical to the others, but the swarm of tiny
//!   launches makes it *launch-bound* (paper Figure 7a).
//! * [`backend::LstmBackend::CuDnn`] — a fused implementation mirroring
//!   cuDNN's: one batched input GEMM, per-step recurrent GEMMs, one fused
//!   pointwise kernel per step, and Appleyard-style *layer wavefront
//!   overlap* for multi-layer stacks (which is why cuDNN occasionally wins
//!   at 4 layers in Figure 20).
//! * [`backend::LstmBackend::EcoRnn`] — the paper's backend: fused like
//!   cuDNN but with the `[T, H, B]` data layout, so every GEMM streams
//!   coalesced (§4.2, §5.3).
//!
//! The [`mod@autotune`] module implements the transparent backend selection of
//! §5.4: a microbenchmark simulates a few iterations of each backend for
//! the user's hyperparameters and picks the fastest.

#![warn(missing_docs)]

pub mod autotune;
pub mod backend;
pub mod cell;
pub mod fused;
pub mod gru;
pub mod pure;
pub mod step;
pub mod unfused;

pub use autotune::{autotune, AutotuneReport};
pub use backend::{LstmBackend, LstmParams, LstmStack, LstmStateIo};
pub use cell::{lstm_step_backward, lstm_step_forward, LstmStepGrads};
pub use fused::{CudnnLstmStack, FusedLstmLayer};
pub use gru::GruStep;
pub use pure::{pure_lstm_times, PureLstmConfig};
pub use step::LstmStep;
