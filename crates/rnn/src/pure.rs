//! Pure-LSTM benchmark driver: forward/backward simulated runtimes for one
//! backend and hyperparameter point — the engine behind Figure 20 and the
//! autotuner.

use crate::backend::{LstmBackend, LstmStack};
use echo_device::{DeviceSim, DeviceSpec};
use echo_graph::{ExecOptions, Executor, Graph, Result, StashPlan};
use echo_memory::{DeviceMemory, LayerKind};
use echo_ops::MeanAll;
use echo_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-op dispatch cost of MXNet's C++ engine (scheduling, dependency
/// tracking) — applies to every executed operator regardless of frontend.
pub const CPP_OP_OVERHEAD_NS: u64 = 4_000;

/// One pure-LSTM configuration (paper §6.3: the Cartesian product of
/// batch, hidden, layers with `T = 50`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PureLstmConfig {
    /// Backend under test.
    pub backend: LstmBackend,
    /// Batch size.
    pub batch: usize,
    /// Hidden dimension (also used as the input dimension).
    pub hidden: usize,
    /// Number of stacked layers.
    pub layers: usize,
    /// Sequence length.
    pub seq_len: usize,
}

impl PureLstmConfig {
    /// A configuration with the paper's fixed `T = 50`.
    pub fn new(backend: LstmBackend, batch: usize, hidden: usize, layers: usize) -> Self {
        PureLstmConfig {
            backend,
            batch,
            hidden,
            layers,
            seq_len: 50,
        }
    }
}

/// Simulated `(forward_ns, backward_ns)` for one configuration on `spec`.
///
/// The model is a bare LSTM stack with a trivial scalar loss (no
/// embedding/attention/output layers), matching the paper's §6.3
/// microbenchmark. Execution is on the symbolic plane — only kernel
/// launches are simulated, so a full sweep runs in milliseconds.
///
/// # Errors
///
/// Propagates graph-execution errors.
pub fn pure_lstm_times(cfg: &PureLstmConfig, spec: &DeviceSpec) -> Result<(u64, u64)> {
    let mut g = Graph::new();
    let x = g.input("x", LayerKind::Rnn);
    let stack = LstmStack::build(
        &mut g,
        cfg.backend,
        x,
        cfg.seq_len,
        cfg.hidden,
        cfg.hidden,
        cfg.layers,
        "rnn",
        LayerKind::Rnn,
    );
    let loss = g.apply("loss", Arc::new(MeanAll), &[stack.output], LayerKind::Other);
    let graph = Arc::new(g);

    let opts = ExecOptions {
        training: true,
        numeric: false,
    };
    let mut bindings = HashMap::new();
    bindings.insert(
        x,
        Tensor::zeros(Shape::d3(cfg.seq_len, cfg.batch, cfg.hidden)),
    );
    stack.add_zero_state_bindings(cfg.batch, &mut bindings);

    // Forward-only pass.
    let mem = DeviceMemory::with_overhead_model(64 << 30, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&graph), StashPlan::stash_all(), mem);
    stack.bind_param_shapes(&mut exec)?;
    let mut sim = DeviceSim::new(spec.clone());
    sim.set_record_trace(false);
    sim.set_op_overhead_ns(CPP_OP_OVERHEAD_NS);
    // `forward` returns the value only on the numeric plane; we only need
    // the simulated clock.
    let _ = exec.forward(&bindings, stack.output, opts, Some(&mut sim));
    sim.synchronize();
    let fwd_ns = sim.elapsed_ns();

    // Full training iteration.
    let mem = DeviceMemory::with_overhead_model(64 << 30, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&graph), StashPlan::stash_all(), mem);
    stack.bind_param_shapes(&mut exec)?;
    let mut sim = DeviceSim::new(spec.clone());
    sim.set_record_trace(false);
    sim.set_op_overhead_ns(CPP_OP_OVERHEAD_NS);
    exec.train_step(&bindings, loss, opts, Some(&mut sim))?;
    sim.synchronize();
    let total_ns = sim.elapsed_ns();

    Ok((fwd_ns, total_ns.saturating_sub(fwd_ns)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(backend: LstmBackend, b: usize, h: usize, l: usize) -> (u64, u64) {
        let mut cfg = PureLstmConfig::new(backend, b, h, l);
        cfg.seq_len = 20; // keep tests fast
        pure_lstm_times(&cfg, &DeviceSpec::titan_xp()).unwrap()
    }

    #[test]
    fn ecornn_beats_default_substantially() {
        // Paper: up to 3x over Default on pure LSTM.
        let (d_fwd, d_bwd) = times(LstmBackend::Default, 64, 512, 1);
        let (e_fwd, e_bwd) = times(LstmBackend::EcoRnn, 64, 512, 1);
        let speedup = (d_fwd + d_bwd) as f64 / (e_fwd + e_bwd) as f64;
        assert!(
            speedup > 1.5,
            "EcoRNN speedup over Default only {speedup:.2}x"
        );
    }

    #[test]
    fn ecornn_beats_cudnn_at_one_layer() {
        // Paper: ~1.5x over cuDNN on single-layer pure LSTM.
        let (c_fwd, c_bwd) = times(LstmBackend::CuDnn, 64, 512, 1);
        let (e_fwd, e_bwd) = times(LstmBackend::EcoRnn, 64, 512, 1);
        let speedup = (c_fwd + c_bwd) as f64 / (e_fwd + e_bwd) as f64;
        assert!(
            speedup > 1.05,
            "EcoRNN speedup over CuDNN only {speedup:.2}x"
        );
    }

    #[test]
    fn cudnn_catches_up_at_four_layers() {
        // Paper: in a few multi-layer cases cuDNN is within 20% or better.
        let ratio = |l: usize| {
            let (c_fwd, c_bwd) = times(LstmBackend::CuDnn, 32, 256, l);
            let (e_fwd, e_bwd) = times(LstmBackend::EcoRnn, 32, 256, l);
            (c_fwd + c_bwd) as f64 / (e_fwd + e_bwd) as f64
        };
        let r1 = ratio(1);
        let r4 = ratio(4);
        assert!(
            r4 < r1,
            "cuDNN's relative position must improve with layers: L1 {r1:.2} L4 {r4:.2}"
        );
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let (fwd, bwd) = times(LstmBackend::CuDnn, 64, 512, 1);
        assert!(bwd > fwd / 2, "bwd {bwd} vs fwd {fwd}");
    }
}
