//! A single fused LSTM step — the decoder-side cell.
//!
//! NMT decoders interleave the LSTM cell with attention, so they cannot use
//! the full-sequence fused layers; Sockeye steps its decoder cell one word
//! at a time. [`LstmStep`] is that cell as one graph node: fused pointwise
//! math (one kernel instead of the Default backend's ~10) but still one
//! node per time step.

use crate::cell::{lstm_step_backward, lstm_step_forward};
use echo_cachesim::TiledGemmSpec;
use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{Shape, Tensor};

/// One fused LSTM step.
///
/// Inputs: `x [B x In], h_prev [B x H], c_prev [B x H], Wx [4H x In],
/// Wh [4H x H], b [4H]`. Output: the packed state `[2, B, H]` with slice 0
/// the new hidden state and slice 1 the new cell state (split downstream
/// with `SliceAxis0`).
#[derive(Debug, Clone)]
pub struct LstmStep {
    hidden: usize,
}

impl LstmStep {
    /// A step cell with hidden dimension `hidden`.
    pub fn new(hidden: usize) -> Self {
        LstmStep { hidden }
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn dims(&self, inputs: &[&Shape]) -> Result<(usize, usize)> {
        if inputs.len() != 6 {
            return Err(GraphError::Operator {
                op: "lstm_step".to_string(),
                message: format!("expected 6 inputs, got {}", inputs.len()),
            });
        }
        let (b, in_dim) = inputs[0].as_matrix();
        let (bh, h) = inputs[1].as_matrix();
        if bh != b || h != self.hidden {
            return Err(GraphError::Operator {
                op: "lstm_step".to_string(),
                message: format!("h_prev {} incompatible with x {}", inputs[1], inputs[0]),
            });
        }
        Ok((b, in_dim))
    }
}

impl Operator for LstmStep {
    fn name(&self) -> &str {
        "lstm_step"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::FullyConnected
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let (b, _) = self.dims(inputs)?;
        Ok(Shape::d3(2, b, self.hidden))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let (h, c, gates) = lstm_step_forward(
            inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], inputs[5],
        )?;
        let b = h.shape().dim(0);
        let mut packed = Tensor::zeros(Shape::d3(2, b, self.hidden));
        packed.set_axis0(0, &h)?;
        packed.set_axis0(1, &c)?;
        Ok((packed, vec![gates]))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x = inputs[0].expect("lstm_step stashes inputs");
        let h_prev = inputs[1].expect("lstm_step stashes inputs");
        let c_prev = inputs[2].expect("lstm_step stashes inputs");
        let wx = inputs[3].expect("lstm_step stashes inputs");
        let wh = inputs[4].expect("lstm_step stashes inputs");
        let packed = output.expect("lstm_step stashes output");
        let c_new = packed.index_axis0(1)?;
        let dh = dy.index_axis0(0)?;
        let dc = dy.index_axis0(1)?;
        let grads = lstm_step_backward(x, h_prev, c_prev, wx, wh, &saved[0], &c_new, &dh, &dc)?;
        Ok(vec![
            Some(grads.dx),
            Some(grads.dh_prev),
            Some(grads.dc_prev),
            Some(grads.dwx),
            Some(grads.dwh),
            Some(grads.db),
        ])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::BOTH
    }
    fn saved_bytes(&self, inputs: &[&Shape], _output: &Shape) -> u64 {
        let Ok((b, _)) = self.dims(inputs) else {
            return 0;
        };
        (b * 4 * self.hidden * 4) as u64
    }
    fn forward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((b, in_dim)) = self.dims(inputs) else {
            return Vec::new();
        };
        vec![
            KernelLaunch::gemm(
                "sgemm_step_input",
                TiledGemmSpec::fc_row_major(b, in_dim, 4 * self.hidden),
            ),
            KernelLaunch::gemm(
                "sgemm_step_recurrent",
                TiledGemmSpec::fc_row_major(b, self.hidden, 4 * self.hidden),
            ),
            KernelLaunch::kernel(
                "lstm_step_pointwise",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * 4 * self.hidden, 3),
            ),
        ]
    }
    fn backward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((b, in_dim)) = self.dims(inputs) else {
            return Vec::new();
        };
        vec![
            KernelLaunch::kernel(
                "lstm_step_pointwise_bwd",
                KernelCategory::Elementwise,
                KernelCost::elementwise(b * 4 * self.hidden, 4),
            ),
            KernelLaunch::gemm(
                "sgemm_step_dx",
                TiledGemmSpec::new(b, in_dim, 4 * self.hidden),
            ),
            KernelLaunch::gemm(
                "sgemm_step_dh",
                TiledGemmSpec::new(b, self.hidden, 4 * self.hidden),
            ),
            KernelLaunch::gemm(
                "sgemm_step_dw",
                TiledGemmSpec::new(4 * self.hidden, in_dim + self.hidden, b),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_tensor::init::{seeded_rng, uniform};

    #[test]
    fn packed_output_holds_h_and_c() {
        let mut rng = seeded_rng(9);
        let (b, h) = (2, 3);
        let x = uniform(Shape::d2(b, h), 1.0, &mut rng);
        let h0 = Tensor::zeros(Shape::d2(b, h));
        let c0 = Tensor::zeros(Shape::d2(b, h));
        let wx = uniform(Shape::d2(4 * h, h), 0.5, &mut rng);
        let wh = uniform(Shape::d2(4 * h, h), 0.5, &mut rng);
        let bias = uniform(Shape::d1(4 * h), 0.2, &mut rng);
        let op = LstmStep::new(h);
        let (packed, saved) = op.forward(&[&x, &h0, &c0, &wx, &wh, &bias]).unwrap();
        let (h_ref, c_ref, gates_ref) = lstm_step_forward(&x, &h0, &c0, &wx, &wh, &bias).unwrap();
        assert_eq!(packed.index_axis0(0).unwrap(), h_ref);
        assert_eq!(packed.index_axis0(1).unwrap(), c_ref);
        assert_eq!(saved[0], gates_ref);
    }

    #[test]
    fn backward_routes_packed_gradients() {
        let mut rng = seeded_rng(10);
        let (b, h) = (1, 2);
        let x = uniform(Shape::d2(b, h), 1.0, &mut rng);
        let h0 = uniform(Shape::d2(b, h), 1.0, &mut rng);
        let c0 = uniform(Shape::d2(b, h), 1.0, &mut rng);
        let wx = uniform(Shape::d2(4 * h, h), 0.6, &mut rng);
        let wh = uniform(Shape::d2(4 * h, h), 0.6, &mut rng);
        let bias = uniform(Shape::d1(4 * h), 0.2, &mut rng);
        let op = LstmStep::new(h);
        let all = [&x, &h0, &c0, &wx, &wh, &bias];
        let (packed, saved) = op.forward(&all).unwrap();
        // Only dh flows in (dc = 0) — loss = sum(h).
        let mut dy = Tensor::zeros(packed.shape().clone());
        dy.set_axis0(0, &Tensor::full(Shape::d2(b, h), 1.0))
            .unwrap();
        let opt: Vec<Option<&Tensor>> = all.iter().map(|t| Some(*t)).collect();
        let grads = op.backward(&opt, Some(&packed), &saved, &dy).unwrap();
        // Matches the raw cell backward.
        let reference = lstm_step_backward(
            &x,
            &h0,
            &c0,
            &wx,
            &wh,
            &saved[0],
            &packed.index_axis0(1).unwrap(),
            &Tensor::full(Shape::d2(b, h), 1.0),
            &Tensor::zeros(Shape::d2(b, h)),
        )
        .unwrap();
        assert_eq!(grads[0].as_ref().unwrap(), &reference.dx);
        assert_eq!(grads[3].as_ref().unwrap(), &reference.dwx);
        assert_eq!(grads[5].as_ref().unwrap(), &reference.db);
    }

    #[test]
    fn arity_validation() {
        let op = LstmStep::new(4);
        let s = Shape::d2(2, 4);
        assert!(op.infer_shape(&[&s, &s]).is_err());
    }
}
