//! The MXNet-"Default" unfused LSTM: a per-step subgraph of small
//! operators.
//!
//! This is a faithful structural port of MXNet's Python `LSTMCell`
//! (`rnn_cell.py`): every time step issues two fully-connected layers, an
//! element-wise add, four gate slices, four activations and four
//! element-wise combines — each its own kernel. The resulting ~15 launches
//! per step are what Figure 7(a) shows drowning the GPU in `cudaLaunch`
//! overhead.

use echo_graph::{Graph, NodeId};
use echo_memory::LayerKind;
use echo_ops::{Activation, Add, FullyConnected, Mul, SliceAxis0, SliceLastDim, StackAxis0};
use std::sync::Arc;

/// Handles to one unfused layer's parameter nodes and initial states.
#[derive(Debug, Clone)]
pub struct UnfusedLayer {
    /// `[T, B, H]` hidden-sequence output node.
    pub output: NodeId,
    /// Input-projection weight node (`[4H x In]`).
    pub wx: NodeId,
    /// Recurrent weight node (`[4H x H]`).
    pub wh: NodeId,
    /// Bias node (`[4H]`).
    pub b: NodeId,
    /// Initial hidden state input node (bind to zeros `[B x H]`).
    pub h0: NodeId,
    /// Initial cell state input node (bind to zeros `[B x H]`).
    pub c0: NodeId,
    /// Final hidden state node (`[B x H]`, h at t = T-1) — with `h0`/`c0`
    /// this is what lets a serving engine thread LSTM state across calls.
    pub h_last: NodeId,
    /// Final cell state node (`[B x H]`, c at t = T-1).
    pub c_last: NodeId,
}

/// Builds one unfused LSTM layer over `x_seq` (`[T, B, In]`), creating its
/// parameter and initial-state nodes.
///
/// `seq_len` must match the runtime extent of `x_seq`'s axis 0 — the graph
/// is statically unrolled, exactly like MXNet's symbolic executor.
pub fn build_unfused_lstm_layer(
    g: &mut Graph,
    x_seq: NodeId,
    seq_len: usize,
    hidden: usize,
    prefix: &str,
    layer: LayerKind,
) -> UnfusedLayer {
    let wx = g.param(format!("{prefix}_wx"), layer);
    let wh = g.param(format!("{prefix}_wh"), layer);
    let b = g.param(format!("{prefix}_b"), layer);
    let h0 = g.input(format!("{prefix}_h0"), layer);
    let c0 = g.input(format!("{prefix}_c0"), layer);

    let fc_x: Arc<dyn echo_graph::Operator + Send + Sync> =
        Arc::new(FullyConnected::new(4 * hidden));
    let fc_h: Arc<dyn echo_graph::Operator + Send + Sync> =
        Arc::new(FullyConnected::new(4 * hidden).without_bias());
    let sigmoid: Arc<dyn echo_graph::Operator + Send + Sync> = Arc::new(Activation::sigmoid());
    let tanh: Arc<dyn echo_graph::Operator + Send + Sync> = Arc::new(Activation::tanh());

    let mut h_prev = h0;
    let mut c_prev = c0;
    let mut steps = Vec::with_capacity(seq_len);
    for t in 0..seq_len {
        let x_t = g.apply(
            format!("{prefix}_x{t}"),
            Arc::new(SliceAxis0 { index: t }),
            &[x_seq],
            layer,
        );
        let ix = g.apply(
            format!("{prefix}_ix{t}"),
            Arc::clone(&fc_x),
            &[x_t, wx, b],
            layer,
        );
        let hx = g.apply(
            format!("{prefix}_hx{t}"),
            Arc::clone(&fc_h),
            &[h_prev, wh],
            layer,
        );
        let pre = g.apply(format!("{prefix}_pre{t}"), Arc::new(Add), &[ix, hx], layer);
        let slice = |g: &mut Graph, name: &str, lo: usize, hi: usize| {
            g.apply(
                format!("{prefix}_{name}{t}"),
                Arc::new(SliceLastDim::new(lo * hidden, hi * hidden)),
                &[pre],
                layer,
            )
        };
        let i_pre = slice(g, "ipre", 0, 1);
        let f_pre = slice(g, "fpre", 1, 2);
        let g_pre = slice(g, "gpre", 2, 3);
        let o_pre = slice(g, "opre", 3, 4);
        let i_g = g.apply(
            format!("{prefix}_i{t}"),
            Arc::clone(&sigmoid),
            &[i_pre],
            layer,
        );
        let f_g = g.apply(
            format!("{prefix}_f{t}"),
            Arc::clone(&sigmoid),
            &[f_pre],
            layer,
        );
        let g_g = g.apply(format!("{prefix}_g{t}"), Arc::clone(&tanh), &[g_pre], layer);
        let o_g = g.apply(
            format!("{prefix}_o{t}"),
            Arc::clone(&sigmoid),
            &[o_pre],
            layer,
        );
        let fc = g.apply(
            format!("{prefix}_fc{t}"),
            Arc::new(Mul),
            &[f_g, c_prev],
            layer,
        );
        let ig = g.apply(format!("{prefix}_ig{t}"), Arc::new(Mul), &[i_g, g_g], layer);
        let c_t = g.apply(format!("{prefix}_c{t}"), Arc::new(Add), &[fc, ig], layer);
        let tc = g.apply(format!("{prefix}_tc{t}"), Arc::clone(&tanh), &[c_t], layer);
        let h_t = g.apply(format!("{prefix}_h{t}"), Arc::new(Mul), &[o_g, tc], layer);
        steps.push(h_t);
        h_prev = h_t;
        c_prev = c_t;
    }
    let output = g.apply(
        format!("{prefix}_hseq"),
        Arc::new(StackAxis0),
        &steps,
        layer,
    );
    UnfusedLayer {
        output,
        wx,
        wh,
        b,
        h0,
        c0,
        h_last: h_prev,
        c_last: c_prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::FusedLstmLayer;
    use echo_graph::{Executor, Operator, StashPlan};
    use echo_memory::DeviceMemory;
    use echo_tensor::init::{seeded_rng, uniform};
    use echo_tensor::{Shape, Tensor};
    use std::collections::HashMap;

    #[test]
    fn unfused_matches_fused_numerically() {
        let (t, b, h) = (4usize, 2usize, 3usize);
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Rnn);
        let layer = build_unfused_lstm_layer(&mut g, x, t, h, "l0", LayerKind::Rnn);
        let graph = Arc::new(g);

        let mut rng = seeded_rng(33);
        let wx = uniform(Shape::d2(4 * h, h), 0.5, &mut rng);
        let wh = uniform(Shape::d2(4 * h, h), 0.5, &mut rng);
        let bias = uniform(Shape::d1(4 * h), 0.2, &mut rng);
        let x_val = uniform(Shape::d3(t, b, h), 1.0, &mut rng);

        let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
        let mut exec = Executor::new(Arc::clone(&graph), StashPlan::stash_all(), mem);
        exec.bind_param(layer.wx, wx.clone()).unwrap();
        exec.bind_param(layer.wh, wh.clone()).unwrap();
        exec.bind_param(layer.b, bias.clone()).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, x_val.clone());
        bindings.insert(layer.h0, Tensor::zeros(Shape::d2(b, h)));
        bindings.insert(layer.c0, Tensor::zeros(Shape::d2(b, h)));
        let out = exec
            .forward(&bindings, layer.output, Default::default(), None)
            .unwrap();

        let fused = FusedLstmLayer::new(h);
        let (reference, _) = fused.forward(&[&x_val, &wx, &wh, &bias]).unwrap();
        assert!(
            out.approx_eq(&reference, 1e-5).unwrap(),
            "unfused and fused backends must agree"
        );
    }

    #[test]
    fn unfused_layer_emits_many_nodes() {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Rnn);
        let before = g.len();
        build_unfused_lstm_layer(&mut g, x, 10, 8, "l0", LayerKind::Rnn);
        let per_step = (g.len() - before - 4) as f64 / 10.0;
        assert!(
            per_step >= 14.0,
            "Default backend must issue ~15 ops per step, got {per_step}"
        );
    }
}
