//! Property tests for the RNN crate's backend-equivalence and cell
//! invariants.

use echo_graph::Operator;
use echo_rnn::{lstm_step_forward, CudnnLstmStack, FusedLstmLayer};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn layer_inputs(t: usize, b: usize, h: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = seeded_rng(seed);
    vec![
        uniform(Shape::d3(t, b, h), 1.5, &mut rng),
        uniform(Shape::d2(4 * h, h), 0.7, &mut rng),
        uniform(Shape::d2(4 * h, h), 0.7, &mut rng),
        uniform(Shape::d1(4 * h), 0.3, &mut rng),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The LSTM hidden state is always inside (-1, 1) and the gates inside
    /// their activation ranges, whatever the inputs.
    #[test]
    fn lstm_state_is_bounded(b in 1usize..5, h in 1usize..8, seed in 0u64..1000, scale in 0.1f32..8.0) {
        let mut rng = seeded_rng(seed);
        let x = uniform(Shape::d2(b, h), scale, &mut rng);
        let h0 = uniform(Shape::d2(b, h), scale, &mut rng);
        let c0 = uniform(Shape::d2(b, h), scale, &mut rng);
        let wx = uniform(Shape::d2(4 * h, h), scale, &mut rng);
        let wh = uniform(Shape::d2(4 * h, h), scale, &mut rng);
        let bias = uniform(Shape::d1(4 * h), scale, &mut rng);
        let (h_new, c_new, gates) = lstm_step_forward(&x, &h0, &c0, &wx, &wh, &bias).unwrap();
        prop_assert!(h_new.max_abs() <= 1.0);
        prop_assert!(gates.data().iter().all(|&g| (-1.0..=1.0).contains(&g)));
        // |c| can exceed 1 but is bounded by |c_prev| + 1 per step.
        prop_assert!(c_new.max_abs() <= c0.max_abs() + 1.0 + 1e-5);
    }

    /// The eco-layout fused layer and the plain fused layer are numerically
    /// identical for any shape (layout is a device-plane concern only).
    #[test]
    fn eco_layout_is_numerically_transparent(
        t in 1usize..5, b in 1usize..4, h in 1usize..6, seed in 0u64..500,
    ) {
        let ins = layer_inputs(t, b, h, seed);
        let refs: Vec<&Tensor> = ins.iter().collect();
        let plain = FusedLstmLayer::new(h).forward(&refs).unwrap().0;
        let eco = FusedLstmLayer::new(h).with_eco_layout().forward(&refs).unwrap().0;
        prop_assert_eq!(plain, eco);
    }

    /// A 1-layer cuDNN stack equals a single fused layer exactly.
    #[test]
    fn cudnn_stack_of_one_equals_fused_layer(
        t in 1usize..5, b in 1usize..4, h in 1usize..6, seed in 0u64..500,
    ) {
        let ins = layer_inputs(t, b, h, seed);
        let refs: Vec<&Tensor> = ins.iter().collect();
        let layer = FusedLstmLayer::new(h).forward(&refs).unwrap().0;
        let stack = CudnnLstmStack::new(h, 1).forward(&refs).unwrap().0;
        prop_assert_eq!(layer, stack);
    }

    /// Zero input and zero state yield tanh-bounded but deterministic
    /// bias-driven output; most importantly, no NaNs ever escape.
    #[test]
    fn no_nans_for_extreme_biases(h in 1usize..6, bias_scale in 10.0f32..100.0) {
        let b = 2usize;
        let x = Tensor::zeros(Shape::d2(b, h));
        let h0 = Tensor::zeros(Shape::d2(b, h));
        let c0 = Tensor::zeros(Shape::d2(b, h));
        let wx = Tensor::zeros(Shape::d2(4 * h, h));
        let wh = Tensor::zeros(Shape::d2(4 * h, h));
        let bias = Tensor::full(Shape::d1(4 * h), bias_scale);
        let (h_new, c_new, _) = lstm_step_forward(&x, &h0, &c0, &wx, &wh, &bias).unwrap();
        prop_assert!(h_new.data().iter().all(|v| v.is_finite()));
        prop_assert!(c_new.data().iter().all(|v| v.is_finite()));
    }
}
