//! Micro-batch coalescing under a max-batch / max-wait policy.
//!
//! The batcher blocks for the *first* request (an idle engine burns no
//! CPU), then keeps the batch open for at most [`BatchPolicy::max_wait`]
//! or until [`BatchPolicy::max_batch`] lanes fill — the classic
//! latency/throughput knob. One invariant makes batching composable with
//! session state: **at most one request per session per batch**. The
//! second request of a session needs the state produced by the first, so
//! it is deferred to a carryover list and leads the next batch instead of
//! riding in this one with stale state.

use crate::queue::{BoundedQueue, Popped};
use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

/// When to stop growing a micro-batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Hard lane cap; also the largest batch size plans are pre-built for.
    pub max_batch: usize,
    /// How long the batch stays open after its first request arrives.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Collects the next micro-batch from `queue`, honoring `carryover` from
/// the previous round first. `session_of` names each item's session for
/// the one-per-session invariant. Returns `None` only when the queue is
/// closed and both it and the carryover are fully drained — i.e. shutdown
/// never drops accepted work.
pub fn collect_batch<T>(
    queue: &BoundedQueue<T>,
    carryover: &mut VecDeque<T>,
    policy: &BatchPolicy,
    session_of: impl Fn(&T) -> u64,
) -> Option<Vec<T>> {
    let max_batch = policy.max_batch.max(1);
    let mut batch = Vec::new();
    let mut seen = HashSet::new();

    // Deferred requests go first: they have been waiting the longest.
    // Entries whose session is already represented stay deferred.
    let mut still_deferred = VecDeque::new();
    while let Some(item) = carryover.pop_front() {
        if batch.len() < max_batch && seen.insert(session_of(&item)) {
            batch.push(item);
        } else {
            still_deferred.push_back(item);
        }
    }
    *carryover = still_deferred;

    // Block (no deadline) for the first request of an empty batch.
    if batch.is_empty() {
        match queue.pop_wait() {
            Some(item) => {
                seen.insert(session_of(&item));
                batch.push(item);
            }
            None => return None,
        }
    }

    // Keep the batch open for the wait window or until it fills.
    let deadline = Instant::now() + policy.max_wait;
    while batch.len() < max_batch {
        match queue.pop_deadline(deadline) {
            Popped::Item(item) => {
                if seen.insert(session_of(&item)) {
                    batch.push(item);
                } else {
                    carryover.push_back(item);
                }
            }
            Popped::TimedOut | Popped::Closed => break,
        }
    }
    Some(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Req(u64, u32);

    fn policy(max_batch: usize) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(5),
        }
    }

    #[test]
    fn coalesces_up_to_max_batch() {
        let q = BoundedQueue::new(16);
        for s in 0..5u64 {
            q.try_push(Req(s, 0)).unwrap();
        }
        let mut carry = VecDeque::new();
        let batch = collect_batch(&q, &mut carry, &policy(4), |r| r.0).unwrap();
        assert_eq!(batch.len(), 4, "capped at max_batch");
        let rest = collect_batch(&q, &mut carry, &policy(4), |r| r.0).unwrap();
        assert_eq!(rest, vec![Req(4, 0)]);
    }

    #[test]
    fn same_session_is_deferred_to_the_next_batch() {
        let q = BoundedQueue::new(16);
        q.try_push(Req(1, 10)).unwrap();
        q.try_push(Req(1, 11)).unwrap();
        q.try_push(Req(2, 20)).unwrap();
        let mut carry = VecDeque::new();
        let first = collect_batch(&q, &mut carry, &policy(8), |r| r.0).unwrap();
        assert_eq!(first, vec![Req(1, 10), Req(2, 20)]);
        assert_eq!(carry.len(), 1, "duplicate session deferred");
        let second = collect_batch(&q, &mut carry, &policy(8), |r| r.0).unwrap();
        assert_eq!(second, vec![Req(1, 11)]);
    }

    #[test]
    fn drains_carryover_after_close() {
        let q = BoundedQueue::new(4);
        q.try_push(Req(3, 1)).unwrap();
        q.try_push(Req(3, 2)).unwrap();
        q.close();
        let mut carry = VecDeque::new();
        let p = policy(8);
        assert_eq!(
            collect_batch(&q, &mut carry, &p, |r| r.0).unwrap(),
            vec![Req(3, 1)]
        );
        assert_eq!(
            collect_batch(&q, &mut carry, &p, |r| r.0).unwrap(),
            vec![Req(3, 2)],
            "carryover survives queue close"
        );
        assert!(collect_batch(&q, &mut carry, &p, |r| r.0).is_none());
    }
}
