//! The serving engine: bounded admission, worker threads, planned decode.
//!
//! ```text
//! submit(session, token) ──try_push──▶ worker queue ──collect_batch──▶
//!   resolve states (cache hit | re-warm from history) ──▶
//!   set plans[B] ──infer_step──▶ per-lane logits + next states ──▶ Ticket
//! ```
//!
//! Sessions are partitioned across workers by session-id hash, so all
//! requests of one session execute on one worker in arrival order and its
//! state never crosses threads. Each worker owns a parameter *replica*
//! executor ([`Executor::clone_replica`]) whose step-persistent
//! [`TensorPool`](echo_memory::TensorPool) recycles decode-step storage
//! across requests; the engine pre-builds one inference-mode
//! [`ExecPlan`] per batch size `1..=max_batch` from the prototype and all
//! replicas share them.
//!
//! Because the decode path is batch-invariant (see
//! [`echo_models::infer`]), none of these mechanics change a single bit
//! of any session's logits: batching, eviction + re-warm, and plan-driven
//! vs legacy execution are all transparent.

use crate::batcher::{collect_batch, BatchPolicy};
use crate::queue::{BoundedQueue, PushError};
use crate::session::SessionCache;
use crossbeam::channel;
use echo_graph::{ExecPlan, Executor, StashPlan};
use echo_memory::{DeviceMemory, TensorPoolStats};
use echo_models::{LmState, WordLmDecoder, WordLmHyper};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Largest micro-batch; plans are pre-built for every size up to it.
    pub max_batch: usize,
    /// How long a batch stays open after its first request.
    pub max_wait: Duration,
    /// Per-worker admission queue depth; pushes beyond it are rejected.
    pub queue_capacity: usize,
    /// Worker threads, each with its own parameter replica.
    pub workers: usize,
    /// Per-worker LRU session-state capacity.
    pub session_capacity: usize,
    /// Install inference-mode execution plans (`false` = always use the
    /// legacy interpreter; results are bit-identical either way).
    pub plan: bool,
    /// Serve the fused decode graph ([`WordLmDecoder::fused_graph`]):
    /// the GIR pipeline's CSE + fusion passes shrink the per-step launch
    /// table, bit-identically to the unfused graph.
    pub fuse: bool,
    /// Simulated device capacity per replica.
    pub mem_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 1,
            session_capacity: 256,
            plan: true,
            fuse: false,
            mem_bytes: 4 << 30,
        }
    }
}

/// Why the engine could not take or finish a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The worker's admission queue is full — shed load and retry.
    Overloaded {
        /// The queue depth that was exceeded.
        capacity: usize,
    },
    /// The engine is shutting down; no new work is accepted.
    ShuttingDown,
    /// The decode step itself failed.
    Exec(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Exec(msg) => write!(f, "decode step failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One completed decode step for one session.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// Next-token logits, `vocab` long.
    pub logits: Vec<f32>,
    /// How many lanes the step ran with (observability only — the lane
    /// count never changes the bits).
    pub batch_size: usize,
}

impl StepOutput {
    /// Index of the highest logit — greedy decoding's next token.
    pub fn argmax(&self) -> u32 {
        let mut best = 0usize;
        for (i, &v) in self.logits.iter().enumerate() {
            if v > self.logits[best] {
                best = i;
            }
        }
        best as u32
    }
}

/// A pending response; [`wait`](Ticket::wait) blocks until the worker
/// executes the request's batch.
pub struct Ticket {
    rx: channel::Receiver<Result<StepOutput, ServeError>>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the engine answers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Exec`] if the decode step failed,
    /// [`ServeError::ShuttingDown`] if the engine dropped the request's
    /// reply channel without answering.
    pub fn wait(self) -> Result<StepOutput, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }
}

struct Request {
    session: u64,
    token: u32,
    reply: channel::Sender<Result<StepOutput, ServeError>>,
}

/// Per-worker counters, published after every batch.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerMetrics {
    completed: u64,
    batches: u64,
    max_batch: usize,
    cache_hits: u64,
    cache_misses: u64,
    evictions: u64,
    rewarms: u64,
    rewarm_tokens: u64,
    pool: TensorPoolStats,
}

/// Point-in-time engine counters from [`Engine::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch observed.
    pub max_batch_observed: usize,
    /// Session-state cache hits across workers.
    pub cache_hits: u64,
    /// Session-state cache misses (new or evicted sessions).
    pub cache_misses: u64,
    /// States evicted from the LRU caches.
    pub evictions: u64,
    /// Evicted sessions transparently re-warmed from history.
    pub rewarms: u64,
    /// Tokens replayed during re-warms.
    pub rewarm_tokens: u64,
    /// Decode-step buffer takes served by the workers' tensor pools.
    pub pool_takes: u64,
    /// Pool takes served without allocating (storage recycled across
    /// requests).
    pub pool_reuse_hits: u64,
}

impl EngineStats {
    /// Mean lanes per executed batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

/// The dynamic-batching inference engine. See the module docs for the
/// request path.
pub struct Engine {
    decoder: Arc<WordLmDecoder>,
    queues: Vec<BoundedQueue<Request>>,
    workers: Vec<JoinHandle<()>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    metrics: Arc<Vec<Mutex<WorkerMetrics>>>,
    plans: Vec<Arc<ExecPlan>>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.queues.len())
            .field("plans", &self.plans.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds the decode graph for `hyper`, binds parameters from `seed`
    /// (bit-identical to a training model drawn with the same seed),
    /// compiles inference plans for every batch size up to
    /// `config.max_batch`, and starts the worker threads.
    ///
    /// # Errors
    ///
    /// Propagates parameter-binding, planning and replica-cloning
    /// failures (e.g. the configured device memory cannot hold the
    /// parameters).
    pub fn start(hyper: WordLmHyper, seed: u64, config: ServeConfig) -> Result<Engine, ServeError> {
        let exec_err = |e: echo_graph::GraphError| ServeError::Exec(e.to_string());
        let decoder = Arc::new(WordLmDecoder::build(hyper));
        let mem = || DeviceMemory::with_overhead_model(config.mem_bytes, 0, 0.0);
        // Node ids survive the fusion rewrite, so every decoder node id
        // (bindings, outputs, session state) works against either graph.
        let graph = if config.fuse {
            decoder.fused_graph().map_err(exec_err)?
        } else {
            Arc::clone(&decoder.graph)
        };
        let mut proto = Executor::new(graph, StashPlan::stash_all(), mem());
        decoder.bind_params(&mut proto, seed).map_err(exec_err)?;

        let mut plans = Vec::new();
        if config.plan {
            for b in 1..=config.max_batch.max(1) {
                let plan = proto
                    .plan_for_inference(&decoder.symbolic_bindings(b), decoder.outputs())
                    .map_err(exec_err)?;
                plans.push(plan);
            }
        }

        let workers = config.workers.max(1);
        let queues: Vec<BoundedQueue<Request>> = (0..workers)
            .map(|_| BoundedQueue::new(config.queue_capacity))
            .collect();
        let metrics: Arc<Vec<Mutex<WorkerMetrics>>> = Arc::new(
            (0..workers)
                .map(|_| Mutex::new(WorkerMetrics::default()))
                .collect(),
        );
        let mut handles = Vec::new();
        for (i, queue) in queues.iter().enumerate() {
            let exec = proto.clone_replica(mem()).map_err(exec_err)?;
            let worker = Worker {
                decoder: Arc::clone(&decoder),
                plans: plans.clone(),
                queue: queue.clone(),
                cache: SessionCache::new(config.session_capacity),
                history: HashMap::new(),
                policy: BatchPolicy {
                    max_batch: config.max_batch,
                    max_wait: config.max_wait,
                },
                metrics: Arc::clone(&metrics),
                slot: i,
                exec,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("echo-serve-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker thread"),
            );
        }

        Ok(Engine {
            decoder,
            queues,
            workers: handles,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            metrics,
            plans,
        })
    }

    /// The decode model this engine serves.
    pub fn decoder(&self) -> &WordLmDecoder {
        &self.decoder
    }

    /// The shared inference plans, one per batch size `1..=max_batch`
    /// (empty when planning is disabled).
    pub fn plans(&self) -> &[Arc<ExecPlan>] {
        &self.plans
    }

    /// Submits one token for `session` and returns a [`Ticket`] for the
    /// response. Requests of one session are answered in submission
    /// order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the session's worker queue is full
    /// (backpressure by rejection — never by blocking), or
    /// [`ServeError::ShuttingDown`] after [`Engine::shutdown`] began.
    pub fn submit(&self, session: u64, token: u32) -> Result<Ticket, ServeError> {
        let queue = &self.queues[self.worker_of(session)];
        let (tx, rx) = channel::unbounded();
        let request = Request {
            session,
            token,
            reply: tx,
        };
        match queue.try_push(request) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err((_, PushError::Full)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded {
                    capacity: queue.capacity(),
                })
            }
            Err((_, PushError::Closed)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Convenience: submit + wait in one call.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`] and [`Ticket::wait`].
    pub fn step(&self, session: u64, token: u32) -> Result<StepOutput, ServeError> {
        self.submit(session, token)?.wait()
    }

    /// The worker index `session` is pinned to.
    fn worker_of(&self, session: u64) -> usize {
        // Fibonacci hashing spreads consecutive ids across workers.
        (session.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.queues.len()
    }

    /// Aggregated engine counters.
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            ..EngineStats::default()
        };
        for slot in self.metrics.iter() {
            let m = slot.lock().unwrap();
            stats.batches += m.batches;
            stats.max_batch_observed = stats.max_batch_observed.max(m.max_batch);
            stats.cache_hits += m.cache_hits;
            stats.cache_misses += m.cache_misses;
            stats.evictions += m.evictions;
            stats.rewarms += m.rewarms;
            stats.rewarm_tokens += m.rewarm_tokens;
            stats.pool_takes += m.pool.takes;
            stats.pool_reuse_hits += m.pool.reuse_hits;
            stats.completed += m.completed;
        }
        stats
    }

    /// Stops admission, drains every queued request, and joins the
    /// workers. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        for queue in &self.queues {
            queue.close();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Worker {
    decoder: Arc<WordLmDecoder>,
    plans: Vec<Arc<ExecPlan>>,
    queue: BoundedQueue<Request>,
    cache: SessionCache,
    history: HashMap<u64, Vec<u32>>,
    policy: BatchPolicy,
    metrics: Arc<Vec<Mutex<WorkerMetrics>>>,
    slot: usize,
    exec: Executor,
}

impl Worker {
    fn run(mut self) {
        let mut carryover = VecDeque::new();
        let mut local = WorkerMetrics::default();
        while let Some(batch) =
            collect_batch(&self.queue, &mut carryover, &self.policy, |r: &Request| {
                r.session
            })
        {
            if batch.is_empty() {
                continue;
            }
            self.execute(batch, &mut local);
            local.pool = self.exec.tensor_pool_stats();
            local.cache_hits = self.cache.hits();
            local.cache_misses = self.cache.misses();
            local.evictions = self.cache.evictions();
            *self.metrics[self.slot].lock().unwrap() = local;
        }
    }

    /// Runs one micro-batch: resolve every lane's state, decode, reply.
    fn execute(&mut self, batch: Vec<Request>, local: &mut WorkerMetrics) {
        let mut lanes = Vec::with_capacity(batch.len());
        for request in batch {
            match self.resolve_state(request.session, local) {
                Ok(state) => lanes.push((request, state)),
                Err(e) => {
                    let _ = request.reply.send(Err(e));
                }
            }
        }
        if lanes.is_empty() {
            return;
        }

        let b = lanes.len();
        let tokens: Vec<u32> = lanes.iter().map(|(r, _)| r.token).collect();
        let (requests, states): (Vec<Request>, Vec<LmState>) = lanes.into_iter().unzip();
        self.install_plan(b);
        match self.decoder.infer_step(&mut self.exec, &tokens, &states) {
            Ok((logits, next)) => {
                local.batches += 1;
                local.max_batch = local.max_batch.max(b);
                local.completed += b as u64;
                for ((request, lane_logits), state) in requests.into_iter().zip(logits).zip(next) {
                    self.cache.put(request.session, state);
                    self.history
                        .entry(request.session)
                        .or_default()
                        .push(request.token);
                    let _ = request.reply.send(Ok(StepOutput {
                        logits: lane_logits,
                        batch_size: b,
                    }));
                }
            }
            Err(e) => {
                let err = ServeError::Exec(e.to_string());
                for request in requests {
                    let _ = request.reply.send(Err(err.clone()));
                }
            }
        }
    }

    /// A session's current state: cache hit, or transparent re-warm by
    /// replaying its token history from zero (bit-identical to never
    /// having been evicted, by batch invariance).
    fn resolve_state(
        &mut self,
        session: u64,
        local: &mut WorkerMetrics,
    ) -> Result<LmState, ServeError> {
        if let Some(state) = self.cache.take(session) {
            return Ok(state);
        }
        let hyper = self.decoder.hyper;
        let mut state = LmState::zero(hyper.layers, hyper.hidden);
        let prefix = self.history.get(&session).cloned().unwrap_or_default();
        if !prefix.is_empty() {
            local.rewarms += 1;
            local.rewarm_tokens += prefix.len() as u64;
            self.install_plan(1);
            for &token in &prefix {
                let (_, next) = self
                    .decoder
                    .infer_step(&mut self.exec, &[token], std::slice::from_ref(&state))
                    .map_err(|e| ServeError::Exec(e.to_string()))?;
                state = next.into_iter().next().expect("one lane in, one out");
            }
        }
        Ok(state)
    }

    /// Installs the pre-built plan for batch size `b` (no-op when
    /// planning is disabled; sizes beyond `max_batch` fall back to the
    /// legacy interpreter bit-identically).
    fn install_plan(&mut self, b: usize) {
        if let Some(plan) = self.plans.get(b - 1) {
            let _ = self.exec.set_exec_plan(Arc::clone(plan));
        }
    }
}
