//! The serving engine: bounded admission, worker threads, planned decode.
//!
//! ```text
//! generate(session, prompt, n) ──try_push──▶ worker queue ──scheduler──▶
//!   join running batch ──▶ per-step lane compaction ──infer_step──▶
//!   streamed tokens ──▶ leave on completion ──▶ Done
//! ```
//!
//! Sessions are partitioned across workers by session-id hash, so all
//! requests of one session execute on one worker in arrival order and its
//! state never crosses threads. Each worker owns a parameter *replica*
//! executor ([`Executor::clone_replica`]) whose step-persistent
//! [`TensorPool`](echo_memory::TensorPool) recycles decode-step storage
//! across requests; the engine pre-builds one inference-mode
//! [`ExecPlan`] per batch size `1..=max_batch` from the prototype and all
//! replicas share them.
//!
//! Two schedulers drive the decode loop ([`BatchMode`]):
//!
//! * **Continuous** (the default, [`crate::scheduler`]) — sessions join
//!   and leave a *running* batch between decode steps; the batch never
//!   drains to admit a newcomer and never waits to fill.
//! * **Wave** (the PR-4 baseline, [`crate::batcher`]) — coalesce a
//!   micro-batch, run it to completion, repeat. Kept as the measured
//!   baseline the open-loop benchmark gates continuous batching against.
//!
//! Because the decode path is batch-invariant (see
//! [`echo_models::infer`]), none of these mechanics change a single bit
//! of any session's logits: batching, lane churn, eviction + re-warm, and
//! plan-driven vs legacy execution are all transparent.

use crate::batcher::{collect_batch, BatchPolicy};
use crate::queue::{BoundedQueue, Popped, PushError};
use crate::scheduler::{Job, Reply};
use crate::session::SessionCache;
use echo_graph::{ExecPlan, Executor, StashPlan};
use echo_memory::{DeviceMemory, TensorPoolStats};
use echo_models::{LmState, WordLmDecoder, WordLmHyper};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which scheduler runs the decode loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Continuous in-flight batching: sessions join and leave a running
    /// batch between decode steps (lane compaction over the pre-built
    /// per-batch-size plans). The production default.
    #[default]
    Continuous,
    /// Wave batching: coalesce, run, repeat (the PR-4 scheduler). Kept
    /// as the baseline the serving benchmark gates continuous against.
    Wave,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Largest micro-batch / lane count; plans are pre-built for every
    /// size up to it.
    pub max_batch: usize,
    /// Wave mode only: how long a batch stays open after its first
    /// request. The continuous scheduler never waits — it admits
    /// whatever is queued between steps.
    pub max_wait: Duration,
    /// Per-worker admission queue depth; pushes beyond it are rejected.
    pub queue_capacity: usize,
    /// Worker threads, each with its own parameter replica.
    pub workers: usize,
    /// Per-worker LRU session-state capacity.
    pub session_capacity: usize,
    /// Install inference-mode execution plans (`false` = always use the
    /// legacy interpreter; results are bit-identical either way).
    pub plan: bool,
    /// Serve the fused decode graph ([`WordLmDecoder::fused_graph`]):
    /// the GIR pipeline's CSE + fusion passes shrink the per-step launch
    /// table, bit-identically to the unfused graph.
    pub fuse: bool,
    /// Simulated device capacity per replica.
    pub mem_bytes: u64,
    /// Which scheduler runs the decode loop.
    pub mode: BatchMode,
    /// Per-tenant cap on requests in flight (admitted but not finished);
    /// `0` disables quotas. Admission beyond the cap is rejected with
    /// [`ServeError::QuotaExceeded`] — reject, never block.
    pub tenant_inflight_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 1,
            session_capacity: 256,
            plan: true,
            fuse: false,
            mem_bytes: 4 << 30,
            mode: BatchMode::Continuous,
            tenant_inflight_limit: 0,
        }
    }
}

/// Why the engine could not take or finish a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The worker's admission queue is full — shed load and retry.
    Overloaded {
        /// The queue depth that was exceeded.
        capacity: usize,
    },
    /// The tenant already has its full quota of requests in flight.
    QuotaExceeded {
        /// The tenant that was refused.
        tenant: u64,
        /// Its in-flight cap.
        limit: usize,
    },
    /// The request itself is malformed (empty prompt, out-of-vocabulary
    /// token, zero-length generation).
    Invalid(String),
    /// A bounded wait elapsed before the engine answered
    /// ([`Ticket::wait_timeout`], [`StreamTicket::next_timeout`]).
    Timeout,
    /// The engine is shutting down; no new work is accepted.
    ShuttingDown,
    /// The decode step itself failed.
    Exec(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant {tenant} already has {limit} requests in flight")
            }
            ServeError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Timeout => write!(f, "timed out waiting for the engine"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Exec(msg) => write!(f, "decode step failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One completed decode step for one session.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// Next-token logits, `vocab` long.
    pub logits: Vec<f32>,
    /// How many lanes the step ran with (observability only — the lane
    /// count never changes the bits).
    pub batch_size: usize,
}

impl StepOutput {
    /// Index of the highest logit — greedy decoding's next token.
    pub fn argmax(&self) -> u32 {
        let mut best = 0usize;
        for (i, &v) in self.logits.iter().enumerate() {
            if v > self.logits[best] {
                best = i;
            }
        }
        best as u32
    }
}

/// A multi-token generation request for [`Engine::generate`].
///
/// The engine consumes the whole `prompt` (prefill), then greedily
/// decodes `max_new_tokens` tokens, feeding each step's argmax back as
/// the next input. One [`StreamEvent::Token`] is emitted per generated
/// token, the first carrying the logits right after the prompt.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Session this stream extends (state cached across requests).
    pub session: u64,
    /// Tenant for admission quotas (`0` = the default tenant).
    pub tenant: u64,
    /// Tokens to consume before the first emission; must be non-empty.
    pub prompt: Vec<u32>,
    /// Tokens to generate (= [`StreamEvent::Token`] events); minimum 1.
    pub max_new_tokens: usize,
}

impl GenRequest {
    /// A request for the default tenant.
    pub fn new(session: u64, prompt: Vec<u32>, max_new_tokens: usize) -> GenRequest {
        GenRequest {
            session,
            tenant: 0,
            prompt,
            max_new_tokens,
        }
    }

    /// Same request on behalf of `tenant`.
    pub fn with_tenant(mut self, tenant: u64) -> GenRequest {
        self.tenant = tenant;
        self
    }
}

/// One event on a generation stream.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A generated token (greedy argmax), with its logits.
    Token {
        /// Position in the generated stream, `0..max_new_tokens`.
        index: usize,
        /// The argmax token.
        token: u32,
        /// The full next-token logits the argmax came from.
        logits: Vec<f32>,
        /// Lanes in the decode step that produced this token
        /// (observability only — never changes the bits).
        batch: usize,
    },
    /// The stream finished; no further events follow.
    Done {
        /// Tokens generated (equals the request's `max_new_tokens`
        /// unless the stream errored).
        generated: usize,
        /// Submit-to-done wall time.
        latency: Duration,
    },
    /// The stream failed; no further events follow.
    Error(ServeError),
}

/// A pending generation stream; events arrive in order and end with
/// [`StreamEvent::Done`] or [`StreamEvent::Error`].
pub struct StreamTicket {
    pub(crate) rx: BoundedQueue<StreamEvent>,
}

impl fmt::Debug for StreamTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamTicket").finish_non_exhaustive()
    }
}

impl StreamTicket {
    /// Blocks for the next event; `None` once the stream is exhausted
    /// (or the engine dropped it mid-shutdown).
    pub fn next(&self) -> Option<StreamEvent> {
        self.rx.pop_wait()
    }

    /// Blocks at most `timeout` for the next event.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] if nothing arrived in time — the caller
    /// keeps the ticket and may retry or abandon the stream (a wedged
    /// worker must never wedge a front-end handler with it).
    pub fn next_timeout(&self, timeout: Duration) -> Result<Option<StreamEvent>, ServeError> {
        match self.rx.pop_deadline(Instant::now() + timeout) {
            Popped::Item(ev) => Ok(Some(ev)),
            Popped::Closed => Ok(None),
            Popped::TimedOut => Err(ServeError::Timeout),
        }
    }

    /// Non-blocking poll: an event if one is ready, [`Popped::TimedOut`]
    /// when the stream is momentarily idle, [`Popped::Closed`] when it is
    /// exhausted. Load generators juggle thousands of streams on one
    /// thread with this.
    pub fn poll(&self) -> Popped<StreamEvent> {
        self.rx.try_pop()
    }
}

/// A pending single-step response; [`wait`](Ticket::wait) blocks until
/// the worker executes the request's batch.
pub struct Ticket {
    pub(crate) rx: BoundedQueue<Result<StepOutput, ServeError>>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the engine answers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Exec`] if the decode step failed,
    /// [`ServeError::ShuttingDown`] if the engine dropped the request's
    /// reply channel without answering.
    pub fn wait(self) -> Result<StepOutput, ServeError> {
        match self.rx.pop_wait() {
            Some(result) => result,
            None => Err(ServeError::ShuttingDown),
        }
    }

    /// Blocks at most `timeout` for the answer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] if the engine has not answered in time —
    /// the ticket is consumed and the (eventual) reply discarded, so a
    /// wedged worker can never wedge a front-end handler.
    pub fn wait_timeout(self, timeout: Duration) -> Result<StepOutput, ServeError> {
        match self.rx.pop_deadline(Instant::now() + timeout) {
            Popped::Item(result) => result,
            Popped::Closed => Err(ServeError::ShuttingDown),
            Popped::TimedOut => Err(ServeError::Timeout),
        }
    }

    /// Non-blocking poll: `Some` once the engine has answered.
    pub fn try_wait(&self) -> Option<Result<StepOutput, ServeError>> {
        match self.rx.try_pop() {
            Popped::Item(result) => Some(result),
            Popped::Closed => Some(Err(ServeError::ShuttingDown)),
            Popped::TimedOut => None,
        }
    }
}

/// Per-tenant in-flight accounting behind [`Engine::generate`]'s
/// admission check. `limit == 0` disables quotas entirely.
pub(crate) struct TenantLedger {
    limit: usize,
    inflight: Mutex<HashMap<u64, usize>>,
}

impl TenantLedger {
    fn new(limit: usize) -> TenantLedger {
        TenantLedger {
            limit,
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Reserves one in-flight slot for `tenant`, or refuses.
    fn try_admit(&self, tenant: u64) -> bool {
        if self.limit == 0 {
            return true;
        }
        let mut map = self.inflight.lock().unwrap();
        let n = map.entry(tenant).or_insert(0);
        if *n >= self.limit {
            return false;
        }
        *n += 1;
        true
    }

    /// Returns `tenant`'s slot; called by workers when a request
    /// finishes (done or failed).
    pub(crate) fn release(&self, tenant: u64) {
        if self.limit == 0 {
            return;
        }
        let mut map = self.inflight.lock().unwrap();
        if let Some(n) = map.get_mut(&tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(&tenant);
            }
        }
    }
}

/// A bounded reservoir of request completion latencies (submit → done),
/// in microseconds. Percentiles are computed over the most recent
/// `CAP` completions — a sliding window, which is what a live `STATS`
/// endpoint wants anyway.
pub(crate) struct LatencyRecorder {
    samples: Mutex<(Vec<u64>, usize)>,
}

const LATENCY_CAP: usize = 8192;

impl LatencyRecorder {
    fn new() -> LatencyRecorder {
        LatencyRecorder {
            samples: Mutex::new((Vec::new(), 0)),
        }
    }

    pub(crate) fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut guard = self.samples.lock().unwrap();
        let (ring, next) = &mut *guard;
        if ring.len() < LATENCY_CAP {
            ring.push(us);
        } else {
            ring[*next] = us;
            *next = (*next + 1) % LATENCY_CAP;
        }
    }

    /// `(p50, p95, p99)` in microseconds over the current window.
    fn percentiles(&self) -> (f64, f64, f64) {
        let mut snapshot = self.samples.lock().unwrap().0.clone();
        if snapshot.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        snapshot.sort_unstable();
        let pick = |p: f64| {
            let idx = ((p / 100.0) * (snapshot.len() - 1) as f64).round() as usize;
            snapshot[idx] as f64
        };
        (pick(50.0), pick(95.0), pick(99.0))
    }
}

/// Per-worker counters, published after every batch / decode step.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WorkerMetrics {
    pub(crate) completed: u64,
    pub(crate) batches: u64,
    pub(crate) max_batch: usize,
    pub(crate) steps: u64,
    pub(crate) lanes_stepped: u64,
    pub(crate) joins: u64,
    pub(crate) leaves: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) evictions: u64,
    pub(crate) rewarms: u64,
    pub(crate) rewarm_tokens: u64,
    pub(crate) pool: TensorPoolStats,
}

/// Point-in-time engine counters from [`Engine::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests refused at admission (tenant over quota).
    pub quota_rejected: u64,
    /// Requests answered in full (single steps and whole generation
    /// streams each count once).
    pub completed: u64,
    /// Micro-batches executed (wave scheduler).
    pub batches: u64,
    /// Largest lane count observed in any step.
    pub max_batch_observed: usize,
    /// Decode steps executed (continuous scheduler).
    pub steps: u64,
    /// Total lanes across all decode steps; `/ steps` = occupancy.
    pub lanes_stepped: u64,
    /// Sessions that joined a running batch.
    pub joins: u64,
    /// Sessions that left a running batch.
    pub leaves: u64,
    /// Requests currently waiting in admission queues.
    pub queue_depth: usize,
    /// Session-state cache hits across workers.
    pub cache_hits: u64,
    /// Session-state cache misses (new or evicted sessions).
    pub cache_misses: u64,
    /// States evicted from the LRU caches.
    pub evictions: u64,
    /// Evicted sessions transparently re-warmed from history.
    pub rewarms: u64,
    /// Tokens replayed during re-warms.
    pub rewarm_tokens: u64,
    /// Decode-step buffer takes served by the workers' tensor pools.
    pub pool_takes: u64,
    /// Pool takes served without allocating (storage recycled across
    /// requests).
    pub pool_reuse_hits: u64,
    /// p50 of request completion latency, microseconds (sliding window).
    pub p50_us: f64,
    /// p95 of request completion latency, microseconds.
    pub p95_us: f64,
    /// p99 of request completion latency, microseconds.
    pub p99_us: f64,
}

impl EngineStats {
    /// Mean lanes per executed wave batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// Mean lanes per continuous decode step — the occupancy the memory
    /// savings bought.
    pub fn occupancy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.lanes_stepped as f64 / self.steps as f64
        }
    }

    /// Lane joins + leaves per decode step — how hard the batch churns.
    pub fn churn_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            (self.joins + self.leaves) as f64 / self.steps as f64
        }
    }

    /// Session-cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The dynamic-batching inference engine. See the module docs for the
/// request path.
pub struct Engine {
    decoder: Arc<WordLmDecoder>,
    queues: Vec<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    quota_rejected: AtomicU64,
    metrics: Arc<Vec<Mutex<WorkerMetrics>>>,
    ledger: Arc<TenantLedger>,
    latency: Arc<LatencyRecorder>,
    plans: Vec<Arc<ExecPlan>>,
    vocab: usize,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.queues.len())
            .field("plans", &self.plans.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds the decode graph for `hyper`, binds parameters from `seed`
    /// (bit-identical to a training model drawn with the same seed),
    /// compiles inference plans for every batch size up to
    /// `config.max_batch`, and starts the worker threads.
    ///
    /// # Errors
    ///
    /// Propagates parameter-binding, planning and replica-cloning
    /// failures (e.g. the configured device memory cannot hold the
    /// parameters).
    pub fn start(hyper: WordLmHyper, seed: u64, config: ServeConfig) -> Result<Engine, ServeError> {
        let exec_err = |e: echo_graph::GraphError| ServeError::Exec(e.to_string());
        let decoder = Arc::new(WordLmDecoder::build(hyper));
        let mem = || DeviceMemory::with_overhead_model(config.mem_bytes, 0, 0.0);
        // Node ids survive the fusion rewrite, so every decoder node id
        // (bindings, outputs, session state) works against either graph.
        let graph = if config.fuse {
            decoder.fused_graph().map_err(exec_err)?
        } else {
            Arc::clone(&decoder.graph)
        };
        let mut proto = Executor::new(graph, StashPlan::stash_all(), mem());
        decoder.bind_params(&mut proto, seed).map_err(exec_err)?;

        let mut plans = Vec::new();
        if config.plan {
            for b in 1..=config.max_batch.max(1) {
                let plan = proto
                    .plan_for_inference(&decoder.symbolic_bindings(b), decoder.outputs())
                    .map_err(exec_err)?;
                plans.push(plan);
            }
        }

        let workers = config.workers.max(1);
        let queues: Vec<BoundedQueue<Job>> = (0..workers)
            .map(|_| BoundedQueue::new(config.queue_capacity))
            .collect();
        let metrics: Arc<Vec<Mutex<WorkerMetrics>>> = Arc::new(
            (0..workers)
                .map(|_| Mutex::new(WorkerMetrics::default()))
                .collect(),
        );
        let ledger = Arc::new(TenantLedger::new(config.tenant_inflight_limit));
        let latency = Arc::new(LatencyRecorder::new());
        let mut handles = Vec::new();
        for (i, queue) in queues.iter().enumerate() {
            let exec = proto.clone_replica(mem()).map_err(exec_err)?;
            let worker = Worker {
                decoder: Arc::clone(&decoder),
                plans: plans.clone(),
                queue: queue.clone(),
                cache: SessionCache::new(config.session_capacity),
                history: HashMap::new(),
                policy: BatchPolicy {
                    max_batch: config.max_batch,
                    max_wait: config.max_wait,
                },
                metrics: Arc::clone(&metrics),
                ledger: Arc::clone(&ledger),
                latency: Arc::clone(&latency),
                slot: i,
                exec,
            };
            let mode = config.mode;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("echo-serve-{i}"))
                    .spawn(move || match mode {
                        BatchMode::Wave => worker.run_wave(),
                        BatchMode::Continuous => worker.run_continuous(),
                    })
                    .expect("spawn worker thread"),
            );
        }

        Ok(Engine {
            decoder,
            queues,
            workers: handles,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            metrics,
            ledger,
            latency,
            plans,
            vocab: hyper.vocab,
        })
    }

    /// The decode model this engine serves.
    pub fn decoder(&self) -> &WordLmDecoder {
        &self.decoder
    }

    /// The shared inference plans, one per batch size `1..=max_batch`
    /// (empty when planning is disabled).
    pub fn plans(&self) -> &[Arc<ExecPlan>] {
        &self.plans
    }

    /// Submits a generation stream: prefill `prompt`, then greedily
    /// decode `max_new_tokens` tokens, streaming each one. Requests of
    /// one session are answered in submission order; under the
    /// continuous scheduler the stream's session occupies one lane of
    /// the running batch until it finishes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for a malformed request,
    /// [`ServeError::QuotaExceeded`] when the tenant is at its in-flight
    /// cap, [`ServeError::Overloaded`] when the session's worker queue
    /// is full, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn generate(&self, request: GenRequest) -> Result<StreamTicket, ServeError> {
        if request.prompt.is_empty() {
            return Err(ServeError::Invalid("empty prompt".to_string()));
        }
        if request.max_new_tokens == 0 {
            return Err(ServeError::Invalid("max_new_tokens must be >= 1".into()));
        }
        if let Some(&bad) = request.prompt.iter().find(|&&t| t as usize >= self.vocab) {
            return Err(ServeError::Invalid(format!(
                "token {bad} out of vocabulary ({})",
                self.vocab
            )));
        }
        let rx = BoundedQueue::unbounded();
        let job = Job {
            session: request.session,
            tenant: request.tenant,
            prompt: request.prompt,
            max_new: request.max_new_tokens,
            reply: Reply::Stream(rx.clone()),
            submitted: Instant::now(),
        };
        self.enqueue(job)?;
        Ok(StreamTicket { rx })
    }

    /// Submits one token for `session` and returns a [`Ticket`] for the
    /// response (a single-step request on the default tenant). Requests
    /// of one session are answered in submission order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the session's worker queue is full
    /// (backpressure by rejection — never by blocking), or
    /// [`ServeError::ShuttingDown`] after [`Engine::shutdown`] began.
    pub fn submit(&self, session: u64, token: u32) -> Result<Ticket, ServeError> {
        let rx = BoundedQueue::unbounded();
        let job = Job {
            session,
            tenant: 0,
            prompt: vec![token],
            max_new: 1,
            reply: Reply::Step(rx.clone()),
            submitted: Instant::now(),
        };
        self.enqueue(job)?;
        Ok(Ticket { rx })
    }

    fn enqueue(&self, job: Job) -> Result<(), ServeError> {
        let tenant = job.tenant;
        if !self.ledger.try_admit(tenant) {
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QuotaExceeded {
                tenant,
                limit: self.ledger.limit,
            });
        }
        let queue = &self.queues[self.worker_of(job.session)];
        match queue.try_push(job) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err((_, PushError::Full)) => {
                self.ledger.release(tenant);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded {
                    capacity: queue.capacity(),
                })
            }
            Err((_, PushError::Closed)) => {
                self.ledger.release(tenant);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Convenience: submit + wait in one call.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`] and [`Ticket::wait`].
    pub fn step(&self, session: u64, token: u32) -> Result<StepOutput, ServeError> {
        self.submit(session, token)?.wait()
    }

    /// The worker index `session` is pinned to.
    fn worker_of(&self, session: u64) -> usize {
        // Fibonacci hashing spreads consecutive ids across workers.
        (session.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.queues.len()
    }

    /// Aggregated engine counters.
    pub fn stats(&self) -> EngineStats {
        let (p50, p95, p99) = self.latency.percentiles();
        let mut stats = EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            queue_depth: self.queues.iter().map(BoundedQueue::len).sum(),
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            ..EngineStats::default()
        };
        for slot in self.metrics.iter() {
            let m = slot.lock().unwrap();
            stats.batches += m.batches;
            stats.max_batch_observed = stats.max_batch_observed.max(m.max_batch);
            stats.steps += m.steps;
            stats.lanes_stepped += m.lanes_stepped;
            stats.joins += m.joins;
            stats.leaves += m.leaves;
            stats.cache_hits += m.cache_hits;
            stats.cache_misses += m.cache_misses;
            stats.evictions += m.evictions;
            stats.rewarms += m.rewarms;
            stats.rewarm_tokens += m.rewarm_tokens;
            stats.pool_takes += m.pool.takes;
            stats.pool_reuse_hits += m.pool.reuse_hits;
            stats.completed += m.completed;
        }
        stats
    }

    /// Stops admission, drains every queued request, and joins the
    /// workers. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        for queue in &self.queues {
            queue.close();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

pub(crate) struct Worker {
    pub(crate) decoder: Arc<WordLmDecoder>,
    pub(crate) plans: Vec<Arc<ExecPlan>>,
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) cache: SessionCache,
    pub(crate) history: HashMap<u64, Vec<u32>>,
    pub(crate) policy: BatchPolicy,
    pub(crate) metrics: Arc<Vec<Mutex<WorkerMetrics>>>,
    pub(crate) ledger: Arc<TenantLedger>,
    pub(crate) latency: Arc<LatencyRecorder>,
    pub(crate) slot: usize,
    pub(crate) exec: Executor,
}

impl Worker {
    /// The wave scheduler: coalesce a micro-batch, run it, repeat.
    fn run_wave(mut self) {
        let mut carryover = VecDeque::new();
        let mut local = WorkerMetrics::default();
        while let Some(batch) =
            collect_batch(&self.queue, &mut carryover, &self.policy, |j: &Job| {
                j.session
            })
        {
            if batch.is_empty() {
                continue;
            }
            self.execute_wave(batch, &mut local);
            self.publish(&mut local);
        }
    }

    /// Copies cache / pool gauges into `local` and publishes it.
    pub(crate) fn publish(&mut self, local: &mut WorkerMetrics) {
        local.pool = self.exec.tensor_pool_stats();
        local.cache_hits = self.cache.hits();
        local.cache_misses = self.cache.misses();
        local.evictions = self.cache.evictions();
        *self.metrics[self.slot].lock().unwrap() = *local;
    }

    /// Runs one wave micro-batch. Single-step jobs (the common wave
    /// workload) coalesce into one batched decode; multi-token
    /// generation jobs run alone at `B = 1` — the wave scheduler has no
    /// notion of a lane outliving a batch, which is exactly the gap the
    /// continuous scheduler closes.
    fn execute_wave(&mut self, batch: Vec<Job>, local: &mut WorkerMetrics) {
        let (singles, longs): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|j| j.prompt.len() == 1 && j.max_new == 1);

        if !singles.is_empty() {
            let mut lanes = Vec::with_capacity(singles.len());
            for job in singles {
                match self.resolve_state(job.session, local) {
                    Ok(state) => lanes.push((job, state)),
                    Err(e) => {
                        self.ledger.release(job.tenant);
                        job.reply.fail(e);
                    }
                }
            }
            if !lanes.is_empty() {
                let b = lanes.len();
                let tokens: Vec<u32> = lanes.iter().map(|(j, _)| j.prompt[0]).collect();
                let (jobs, states): (Vec<Job>, Vec<LmState>) = lanes.into_iter().unzip();
                self.install_plan(b);
                match self.decoder.infer_step(&mut self.exec, &tokens, &states) {
                    Ok((logits, next)) => {
                        local.batches += 1;
                        local.max_batch = local.max_batch.max(b);
                        for ((job, lane_logits), state) in jobs.into_iter().zip(logits).zip(next) {
                            self.cache.put(job.session, state);
                            self.history
                                .entry(job.session)
                                .or_default()
                                .push(job.prompt[0]);
                            local.completed += 1;
                            self.ledger.release(job.tenant);
                            self.latency.record(job.submitted.elapsed());
                            job.reply.token(0, lane_logits, b);
                            job.reply.done(1, job.submitted.elapsed());
                        }
                    }
                    Err(e) => {
                        let err = ServeError::Exec(e.to_string());
                        for job in jobs {
                            self.ledger.release(job.tenant);
                            job.reply.fail(err.clone());
                        }
                    }
                }
            }
        }

        for job in longs {
            self.execute_alone(job, local);
        }
    }

    /// Runs one generation stream to completion at `B = 1` (wave mode's
    /// only option for multi-token jobs).
    fn execute_alone(&mut self, job: Job, local: &mut WorkerMetrics) {
        let mut state = match self.resolve_state(job.session, local) {
            Ok(state) => state,
            Err(e) => {
                self.ledger.release(job.tenant);
                job.reply.fail(e);
                return;
            }
        };
        self.install_plan(1);
        let mut pending: VecDeque<u32> = job.prompt.iter().copied().collect();
        let mut next = pending.pop_front().expect("validated non-empty");
        let mut emitted = 0usize;
        loop {
            match self
                .decoder
                .infer_step(&mut self.exec, &[next], std::slice::from_ref(&state))
            {
                Ok((mut logits, mut states)) => {
                    self.history.entry(job.session).or_default().push(next);
                    state = states.pop().expect("one lane");
                    local.batches += 1;
                    local.max_batch = local.max_batch.max(1);
                    if let Some(p) = pending.pop_front() {
                        next = p; // still prefilling
                        continue;
                    }
                    let lane_logits = logits.pop().expect("one lane");
                    let token = argmax(&lane_logits);
                    job.reply.token(emitted, lane_logits, 1);
                    emitted += 1;
                    if emitted == job.max_new {
                        break;
                    }
                    next = token;
                }
                Err(e) => {
                    self.ledger.release(job.tenant);
                    job.reply.fail(ServeError::Exec(e.to_string()));
                    return;
                }
            }
        }
        self.cache.put(job.session, state);
        local.completed += 1;
        self.ledger.release(job.tenant);
        self.latency.record(job.submitted.elapsed());
        job.reply.done(emitted, job.submitted.elapsed());
    }

    /// A session's current state: cache hit, or transparent re-warm by
    /// replaying its token history from zero (bit-identical to never
    /// having been evicted, by batch invariance).
    pub(crate) fn resolve_state(
        &mut self,
        session: u64,
        local: &mut WorkerMetrics,
    ) -> Result<LmState, ServeError> {
        if let Some(state) = self.cache.take(session) {
            return Ok(state);
        }
        let hyper = self.decoder.hyper;
        let mut state = LmState::zero(hyper.layers, hyper.hidden);
        let prefix = self.history.get(&session).cloned().unwrap_or_default();
        if !prefix.is_empty() {
            local.rewarms += 1;
            local.rewarm_tokens += prefix.len() as u64;
            self.install_plan(1);
            for &token in &prefix {
                let (_, next) = self
                    .decoder
                    .infer_step(&mut self.exec, &[token], std::slice::from_ref(&state))
                    .map_err(|e| ServeError::Exec(e.to_string()))?;
                state = next.into_iter().next().expect("one lane in, one out");
            }
        }
        Ok(state)
    }

    /// Installs the pre-built plan for batch size `b` (no-op when
    /// planning is disabled; sizes beyond `max_batch` fall back to the
    /// legacy interpreter bit-identically).
    pub(crate) fn install_plan(&mut self, b: usize) {
        if let Some(plan) = self.plans.get(b - 1) {
            let _ = self.exec.set_exec_plan(Arc::clone(plan));
        }
    }
}

/// Greedy decoding's next token for a logits row.
pub(crate) fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stalled-engine fixture: a ticket whose worker never answers.
    /// `wait_timeout` must hand control back instead of wedging the
    /// caller — the property the front end's handlers rely on.
    #[test]
    fn wait_timeout_returns_on_a_stalled_worker() {
        let stalled = Ticket {
            rx: BoundedQueue::unbounded(),
        };
        let t0 = Instant::now();
        match stalled.wait_timeout(Duration::from_millis(30)) {
            Err(ServeError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(30));

        let stream = StreamTicket {
            rx: BoundedQueue::unbounded(),
        };
        match stream.next_timeout(Duration::from_millis(10)) {
            Err(ServeError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        // A stalled stream polls as momentarily idle, not exhausted.
        assert!(matches!(stream.poll(), Popped::TimedOut));
    }

    #[test]
    fn wait_timeout_delivers_an_answered_reply() {
        let rx = BoundedQueue::unbounded();
        rx.try_push(Ok(StepOutput {
            logits: vec![0.0, 2.0, 1.0],
            batch_size: 3,
        }))
        .unwrap();
        let ticket = Ticket { rx };
        let out = ticket.wait_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out.argmax(), 1);
        assert_eq!(out.batch_size, 3);
    }

    #[test]
    fn tenant_ledger_admits_up_to_the_limit() {
        let ledger = TenantLedger::new(2);
        assert!(ledger.try_admit(7));
        assert!(ledger.try_admit(7));
        assert!(!ledger.try_admit(7), "third in-flight request refused");
        assert!(ledger.try_admit(8), "other tenants unaffected");
        ledger.release(7);
        assert!(ledger.try_admit(7), "slot freed on release");
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let rec = LatencyRecorder::new();
        for i in 1..=100u64 {
            rec.record(Duration::from_micros(i));
        }
        let (p50, p95, p99) = rec.percentiles();
        assert!(p50 <= p95 && p95 <= p99);
        assert!((p50 - 50.0).abs() <= 2.0, "p50 ~ 50us, got {p50}");
    }
}
