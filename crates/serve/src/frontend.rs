//! The production front end: a threaded newline-delimited-JSON TCP
//! server over the [`Engine`].
//!
//! Deliberately **no async runtime**: one accept thread plus one handler
//! thread per connection, with the same reject-not-block discipline as
//! the engine underneath — a connection beyond `max_connections` gets an
//! error line and an immediate close, and every engine wait is bounded
//! by [`Ticket::wait_timeout`] / [`StreamTicket::next_timeout`] so a
//! wedged worker can never wedge a handler.
//!
//! ## Protocol
//!
//! One JSON object per line in, one or more JSON objects per line out.
//!
//! ```text
//! → {"op":"generate","session":9,"prompt":[12,3],"max_new_tokens":4}
//! ← {"event":"token","session":9,"index":0,"token":31,"batch":3}
//! ← {"event":"token","session":9,"index":1,"token":8,"batch":2}
//! ← ...
//! ← {"event":"done","session":9,"generated":4,"latency_us":512}
//!
//! → {"op":"step","session":9,"token":31}
//! ← {"event":"token","session":9,"index":0,"token":8,"batch":1}
//!
//! → {"op":"stats"}          (or the bare line: STATS)
//! ← {"event":"stats","queue_depth":0,"occupancy":5.93,...}
//!
//! → {"op":"ping"}
//! ← {"event":"pong"}
//! ```
//!
//! `generate` takes optional `"tenant":N` (admission quotas) and
//! `"logits":true` (embed the full logits row in every token event —
//! floats are emitted with shortest-roundtrip formatting, so the stream
//! is bit-exact on the wire). Failures arrive as
//! `{"event":"error","code":"overloaded"|"quota"|"invalid"|"timeout"|
//! "shutting_down"|"exec","error":"..."}` and never tear down the
//! connection except on I/O errors.

use crate::engine::{Engine, EngineStats, GenRequest, ServeError, StreamEvent};
use crate::wire::{escape, JsonValue, WireF32};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Frontend::local_addr`]).
    pub addr: String,
    /// Concurrent connections beyond this are told `overloaded` and
    /// closed immediately — reject, never block.
    pub max_connections: usize,
    /// Longest a handler waits for the engine before answering
    /// `timeout` — the lid on a wedged worker.
    pub reply_timeout: Duration,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            reply_timeout: Duration::from_secs(5),
        }
    }
}

/// A running line-protocol server; dropping it stops the accept loop.
pub struct Frontend {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Frontend {
    /// Binds `config.addr` and starts accepting connections against
    /// `engine`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start(engine: Arc<Engine>, config: FrontendConfig) -> std::io::Result<Frontend> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe shutdown quickly.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("echo-frontend-accept".to_string())
                .spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                spawn_handler(
                                    stream,
                                    Arc::clone(&engine),
                                    &config,
                                    Arc::clone(&shutdown),
                                    Arc::clone(&live),
                                );
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(20)),
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Frontend {
            local_addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections and asks live handlers to wind down
    /// (each notices within its read-poll interval). Idempotent; also
    /// run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connection-count guard: decrements on drop so handler panics can't
/// leak slots.
struct ConnSlot(Arc<AtomicUsize>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn spawn_handler(
    stream: TcpStream,
    engine: Arc<Engine>,
    config: &FrontendConfig,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
) {
    // Admission first: over the cap the client gets one error line and
    // an immediate close — the accept loop never stops accepting, so
    // rejection stays cheap and prompt.
    if live.fetch_add(1, Ordering::Relaxed) >= config.max_connections {
        let slot = ConnSlot(live);
        let mut stream = stream;
        let _ = writeln!(
            stream,
            "{{\"event\":\"error\",\"code\":\"overloaded\",\"error\":\"connection limit {}\"}}",
            config.max_connections
        );
        drop(slot);
        return;
    }
    let slot = ConnSlot(live);
    let reply_timeout = config.reply_timeout;
    let _ = std::thread::Builder::new()
        .name("echo-frontend-conn".to_string())
        .spawn(move || {
            let _slot = slot;
            let _ = handle_connection(stream, &engine, reply_timeout, &shutdown);
        });
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    reply_timeout: Duration,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // Short read timeout: the handler polls the shutdown flag between
    // timeouts, so a quiet client cannot pin the thread past shutdown.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let request = std::mem::take(&mut line);
                let request = request.trim();
                if request.is_empty() {
                    continue;
                }
                if !dispatch(request, engine, &mut writer, reply_timeout)? {
                    return Ok(());
                }
            }
            // Timeout with a partial line accumulated in `line`: keep
            // accumulating on the next pass.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
}

/// Handles one request line; `Ok(false)` asks the caller to close.
fn dispatch(
    request: &str,
    engine: &Engine,
    writer: &mut TcpStream,
    reply_timeout: Duration,
) -> std::io::Result<bool> {
    if request.eq_ignore_ascii_case("stats") {
        write_stats(writer, &engine.stats())?;
        return Ok(true);
    }
    let parsed = match JsonValue::parse(request) {
        Ok(v) => v,
        Err(e) => {
            write_error(writer, None, "invalid", &format!("parse: {e}"))?;
            return Ok(true);
        }
    };
    match parsed.get("op").and_then(JsonValue::as_str) {
        Some("ping") => writeln!(writer, "{{\"event\":\"pong\"}}").map(|()| true),
        Some("stats") => write_stats(writer, &engine.stats()).map(|()| true),
        Some("quit") => Ok(false),
        Some("step") => {
            let (Some(session), Some(token)) = (
                parsed.get("session").and_then(JsonValue::as_u64),
                parsed.get("token").and_then(JsonValue::as_u64),
            ) else {
                write_error(writer, None, "invalid", "step needs session and token")?;
                return Ok(true);
            };
            match engine
                .submit(session, token as u32)
                .and_then(|t| t.wait_timeout(reply_timeout))
            {
                Ok(out) => {
                    let token = out.argmax();
                    writeln!(
                        writer,
                        "{{\"event\":\"token\",\"session\":{session},\"index\":0,\
                         \"token\":{token},\"batch\":{}}}",
                        out.batch_size
                    )?;
                }
                Err(e) => write_serve_error(writer, Some(session), &e)?,
            }
            Ok(true)
        }
        Some("generate") => {
            let (Some(session), Some(prompt)) = (
                parsed.get("session").and_then(JsonValue::as_u64),
                parsed.get("prompt").and_then(|p| p.as_tokens()),
            ) else {
                write_error(writer, None, "invalid", "generate needs session and prompt")?;
                return Ok(true);
            };
            let max_new = parsed
                .get("max_new_tokens")
                .and_then(JsonValue::as_u64)
                .unwrap_or(1) as usize;
            let tenant = parsed
                .get("tenant")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            let with_logits = parsed
                .get("logits")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false);
            let ticket = match engine
                .generate(GenRequest::new(session, prompt, max_new).with_tenant(tenant))
            {
                Ok(ticket) => ticket,
                Err(e) => {
                    write_serve_error(writer, Some(session), &e)?;
                    return Ok(true);
                }
            };
            loop {
                match ticket.next_timeout(reply_timeout) {
                    Ok(Some(StreamEvent::Token {
                        index,
                        token,
                        logits,
                        batch,
                    })) => {
                        if with_logits {
                            let row: Vec<String> =
                                logits.iter().map(|&x| WireF32(x).to_string()).collect();
                            writeln!(
                                writer,
                                "{{\"event\":\"token\",\"session\":{session},\
                                 \"index\":{index},\"token\":{token},\"batch\":{batch},\
                                 \"logits\":[{}]}}",
                                row.join(",")
                            )?;
                        } else {
                            writeln!(
                                writer,
                                "{{\"event\":\"token\",\"session\":{session},\
                                 \"index\":{index},\"token\":{token},\"batch\":{batch}}}"
                            )?;
                        }
                    }
                    Ok(Some(StreamEvent::Done { generated, latency })) => {
                        writeln!(
                            writer,
                            "{{\"event\":\"done\",\"session\":{session},\
                             \"generated\":{generated},\"latency_us\":{}}}",
                            latency.as_micros()
                        )?;
                        break;
                    }
                    Ok(Some(StreamEvent::Error(e))) => {
                        write_serve_error(writer, Some(session), &e)?;
                        break;
                    }
                    Ok(None) => {
                        write_serve_error(writer, Some(session), &ServeError::ShuttingDown)?;
                        break;
                    }
                    Err(e) => {
                        // The bounded wait elapsed: tell the client and
                        // abandon the stream — never hang the handler.
                        write_serve_error(writer, Some(session), &e)?;
                        break;
                    }
                }
            }
            Ok(true)
        }
        other => {
            write_error(
                writer,
                None,
                "invalid",
                &format!("unknown op {other:?} (try generate/step/stats/ping)"),
            )?;
            Ok(true)
        }
    }
}

fn error_code(e: &ServeError) -> &'static str {
    match e {
        ServeError::Overloaded { .. } => "overloaded",
        ServeError::QuotaExceeded { .. } => "quota",
        ServeError::Invalid(_) => "invalid",
        ServeError::Timeout => "timeout",
        ServeError::ShuttingDown => "shutting_down",
        ServeError::Exec(_) => "exec",
    }
}

fn write_serve_error(
    writer: &mut TcpStream,
    session: Option<u64>,
    e: &ServeError,
) -> std::io::Result<()> {
    write_error(writer, session, error_code(e), &e.to_string())
}

fn write_error(
    writer: &mut TcpStream,
    session: Option<u64>,
    code: &str,
    message: &str,
) -> std::io::Result<()> {
    match session {
        Some(s) => writeln!(
            writer,
            "{{\"event\":\"error\",\"session\":{s},\"code\":\"{code}\",\"error\":\"{}\"}}",
            escape(message)
        ),
        None => writeln!(
            writer,
            "{{\"event\":\"error\",\"code\":\"{code}\",\"error\":\"{}\"}}",
            escape(message)
        ),
    }
}

/// The `STATS` line: every [`EngineStats`] counter plus the derived
/// occupancy / churn / hit-rate gauges the dashboards want.
fn write_stats(writer: &mut TcpStream, s: &EngineStats) -> std::io::Result<()> {
    writeln!(
        writer,
        "{{\"event\":\"stats\",\
         \"submitted\":{},\"rejected\":{},\"quota_rejected\":{},\"completed\":{},\
         \"queue_depth\":{},\"steps\":{},\"lanes_stepped\":{},\"occupancy\":{:.4},\
         \"joins\":{},\"leaves\":{},\"churn_per_step\":{:.4},\
         \"batches\":{},\"max_batch_observed\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},\
         \"evictions\":{},\"rewarms\":{},\"rewarm_tokens\":{},\
         \"pool_takes\":{},\"pool_reuse_hits\":{},\
         \"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1}}}",
        s.submitted,
        s.rejected,
        s.quota_rejected,
        s.completed,
        s.queue_depth,
        s.steps,
        s.lanes_stepped,
        s.occupancy(),
        s.joins,
        s.leaves,
        s.churn_per_step(),
        s.batches,
        s.max_batch_observed,
        s.cache_hits,
        s.cache_misses,
        s.cache_hit_rate(),
        s.evictions,
        s.rewarms,
        s.rewarm_tokens,
        s.pool_takes,
        s.pool_reuse_hits,
        s.p50_us,
        s.p95_us,
        s.p99_us,
    )
}
