//! `echo-serve`: a continuous-batching inference service for the word-LM
//! decode path.
//!
//! Training and serving want opposite things from the executor. Training
//! runs one huge step and must remember everything the backward pass
//! will touch; serving runs millions of tiny steps and must remember
//! *nothing* — except each conversation's recurrent state. This crate is
//! the serving half, built on three pieces the rest of the workspace
//! provides:
//!
//! 1. **Inference-mode execution plans**
//!    ([`echo_graph::ExecPlan::build_inference`]) — no backward schedule,
//!    no stash table, no gradient slots, so the slot arena and launch
//!    table are strictly smaller than the training plan's for the same
//!    graph and shapes. One plan per batch size `1..=max_batch` is
//!    compiled once and shared by every worker replica.
//! 2. **A batch-invariant decode step**
//!    ([`echo_models::WordLmDecoder::infer_step`]) — stacking B requests
//!    into one `[1, B]` step is bit-identical, lane for lane, to B
//!    separate `[1, 1]` steps, for every matmul backend. This is the
//!    license to batch — and to *re*-batch: the continuous scheduler can
//!    admit and retire lanes between decode steps without changing
//!    anyone's logits.
//! 3. **Per-session recurrent state** ([`echo_models::LmState`]) carried
//!    across calls in a capacity-bounded LRU [`SessionCache`]; evicted
//!    sessions are transparently re-warmed by replaying their token
//!    history from zero — bit-identical to never having been evicted,
//!    again by batch invariance.
//!
//! The engine ([`Engine`]) is a synchronous core behind bounded
//! per-worker queues: [`Engine::generate`] either accepts a generation
//! stream and returns a [`StreamTicket`], or rejects immediately
//! ([`ServeError::Overloaded`], [`ServeError::QuotaExceeded`]) —
//! backpressure by rejection, never by blocking the caller. By default
//! workers run the **continuous in-flight scheduler** ([`scheduler`]):
//! sessions join and leave a running batch between decode steps, with
//! per-step lane compaction over the pre-built per-batch-size plans. The
//! PR-4 wave batcher ([`batcher`]) remains available as
//! [`BatchMode::Wave`], and is the baseline the serving benchmark gates
//! continuous batching against.
//!
//! A production front end ([`Frontend`]) wraps the engine in a threaded
//! newline-delimited-JSON TCP server: streaming token output, per-tenant
//! admission quotas, bounded reply waits ([`Ticket::wait_timeout`]), and
//! a `STATS` endpoint surfacing queue depth, batch occupancy, lane-churn
//! rate, latency percentiles and session-cache hit rate from
//! [`EngineStats`].
//!
//! ```
//! use echo_models::WordLmHyper;
//! use echo_rnn::LstmBackend;
//! use echo_serve::{Engine, GenRequest, ServeConfig, StreamEvent};
//!
//! let engine = Engine::start(
//!     WordLmHyper::tiny(50, LstmBackend::Default),
//!     7,
//!     ServeConfig::default(),
//! )?;
//! let stream = engine.generate(GenRequest::new(1, vec![12, 3], 4))?;
//! let mut generated = Vec::new();
//! while let Some(event) = stream.next() {
//!     match event {
//!         StreamEvent::Token { token, .. } => generated.push(token),
//!         StreamEvent::Done { .. } => break,
//!         StreamEvent::Error(e) => return Err(e),
//!     }
//! }
//! assert_eq!(generated.len(), 4);
//! # Ok::<(), echo_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod frontend;
pub mod queue;
pub mod scheduler;
pub mod session;
pub mod wire;

pub use batcher::BatchPolicy;
pub use engine::{
    BatchMode, Engine, EngineStats, GenRequest, ServeConfig, ServeError, StepOutput, StreamEvent,
    StreamTicket, Ticket,
};
pub use frontend::{Frontend, FrontendConfig};
pub use queue::{BoundedQueue, Popped, PushError};
pub use session::SessionCache;
pub use wire::JsonValue;
