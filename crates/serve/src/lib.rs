//! `echo-serve`: a dynamic-batching inference engine for the word-LM
//! decode path.
//!
//! Training and serving want opposite things from the executor. Training
//! runs one huge step and must remember everything the backward pass
//! will touch; serving runs millions of tiny steps and must remember
//! *nothing* — except each conversation's recurrent state. This crate is
//! the serving half, built on three pieces the rest of the workspace
//! provides:
//!
//! 1. **Inference-mode execution plans**
//!    ([`echo_graph::ExecPlan::build_inference`]) — no backward schedule,
//!    no stash table, no gradient slots, so the slot arena and launch
//!    table are strictly smaller than the training plan's for the same
//!    graph and shapes. One plan per batch size `1..=max_batch` is
//!    compiled once and shared by every worker replica.
//! 2. **A batch-invariant decode step**
//!    ([`echo_models::WordLmDecoder::infer_step`]) — stacking B requests
//!    into one `[1, B]` step is bit-identical, lane for lane, to B
//!    separate `[1, 1]` steps, for every matmul backend. This is the
//!    license to batch: the scheduler can coalesce whatever arrives
//!    together without changing anyone's logits.
//! 3. **Per-session recurrent state** ([`echo_models::LmState`]) carried
//!    across calls in a capacity-bounded LRU [`SessionCache`]; evicted
//!    sessions are transparently re-warmed by replaying their token
//!    history from zero — bit-identical to never having been evicted,
//!    again by batch invariance.
//!
//! The engine itself ([`Engine`]) is a synchronous core behind bounded
//! per-worker queues: [`Engine::submit`] either accepts a request and
//! returns a [`Ticket`], or rejects immediately
//! ([`ServeError::Overloaded`]) — backpressure by rejection, never by
//! blocking the caller. Workers coalesce compatible requests into
//! micro-batches under a max-batch / max-wait policy ([`BatchPolicy`]),
//! with at most one request per session per batch so state threading
//! stays causal.
//!
//! ```
//! use echo_models::WordLmHyper;
//! use echo_rnn::LstmBackend;
//! use echo_serve::{Engine, ServeConfig};
//!
//! let engine = Engine::start(
//!     WordLmHyper::tiny(50, LstmBackend::Default),
//!     7,
//!     ServeConfig::default(),
//! )?;
//! let out = engine.step(/* session */ 1, /* token */ 12)?;
//! assert_eq!(out.logits.len(), 50);
//! let next = engine.step(1, out.argmax())?; // state carried over
//! assert_eq!(next.logits.len(), 50);
//! # Ok::<(), echo_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod queue;
pub mod session;

pub use batcher::BatchPolicy;
pub use engine::{Engine, EngineStats, ServeConfig, ServeError, StepOutput, Ticket};
pub use queue::{BoundedQueue, Popped, PushError};
pub use session::SessionCache;
