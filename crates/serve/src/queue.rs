//! A bounded MPSC work queue with *rejection* backpressure.
//!
//! The crossbeam shim's bounded channel blocks producers when full; a
//! serving front-end must never do that — an overloaded engine has to say
//! "no" immediately so the caller can shed load or retry elsewhere.
//! [`BoundedQueue::try_push`] therefore fails fast with the rejected item,
//! and the consumer side adds the deadline-bounded pop the batcher's
//! max-wait window needs (the shim has no `recv_timeout`).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed or retry later.
    Full,
    /// The queue was closed; no further work is accepted.
    Closed,
}

/// Outcome of a deadline-bounded pop.
#[derive(Debug)]
pub enum Popped<T> {
    /// An item arrived before the deadline.
    Item(T),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is closed and drained; no item will ever arrive.
    Closed,
}

/// A cloneable bounded queue: producers reject instead of blocking,
/// consumers block (optionally up to a deadline).
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
    capacity: usize,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
            capacity: self.capacity,
        }
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    items: VecDeque::new(),
                    closed: false,
                }),
                available: Condvar::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// A queue that never rejects for capacity — the reply side of a
    /// request: the producer is the engine itself, which sends exactly
    /// one event per decode step, so boundedness adds nothing but a
    /// failure mode.
    pub fn unbounded() -> Self {
        BoundedQueue::new(usize::MAX)
    }

    /// The capacity this queue rejects beyond.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, or refuses without blocking. The rejected item is
    /// returned with the reason so the caller can fail its request.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return Err((item, PushError::Closed));
        }
        if st.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        st.items.push_back(item);
        drop(st);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is closed
    /// *and* drained (queued work is always delivered before shutdown).
    pub fn pop_wait(&self) -> Option<T> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.inner.available.wait(st).unwrap();
        }
    }

    /// Non-blocking pop: an item if one is ready, [`Popped::TimedOut`]
    /// if the queue is momentarily empty, [`Popped::Closed`] once it is
    /// closed *and* drained. The continuous scheduler polls with this
    /// between decode steps — a running batch never waits for joiners.
    pub fn try_pop(&self) -> Popped<T> {
        let mut st = self.inner.state.lock().unwrap();
        match st.items.pop_front() {
            Some(item) => Popped::Item(item),
            None if st.closed => Popped::Closed,
            None => Popped::TimedOut,
        }
    }

    /// Blocks until an item arrives, `deadline` passes, or the queue
    /// closes — whichever comes first.
    pub fn pop_deadline(&self, deadline: Instant) -> Popped<T> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Popped::Item(item);
            }
            if st.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Popped::TimedOut;
            };
            let (guard, timeout) = self.inner.available.wait_timeout(st, remaining).unwrap();
            st = guard;
            if timeout.timed_out() && st.items.is_empty() && !st.closed {
                return Popped::TimedOut;
            }
        }
    }

    /// Closes the queue: pushes start failing, and consumers drain what
    /// remains before observing the close.
    pub fn close(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.inner.available.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn rejects_when_full_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(why, PushError::Full);
        assert_eq!(q.pop_wait(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_queued_work_then_signals() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8).unwrap_err().1, PushError::Closed);
        assert_eq!(q.pop_wait(), Some(7));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.try_pop(), Popped::TimedOut));
        q.try_push(9).unwrap();
        assert!(matches!(q.try_pop(), Popped::Item(9)));
        q.close();
        assert!(matches!(q.try_pop(), Popped::Closed));
    }

    #[test]
    fn pop_deadline_times_out_on_empty_queue() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        let t0 = Instant::now();
        match q.pop_deadline(t0 + Duration::from_millis(20)) {
            Popped::TimedOut => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn pop_deadline_wakes_on_push_from_another_thread() {
        let q = BoundedQueue::new(1);
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.try_push(42u8).unwrap();
        });
        match q.pop_deadline(Instant::now() + Duration::from_secs(5)) {
            Popped::Item(v) => assert_eq!(v, 42),
            other => panic!("expected item, got {other:?}"),
        }
        h.join().unwrap();
    }
}
