//! Continuous in-flight batching: sessions join and leave a *running*
//! batch between decode steps.
//!
//! The wave batcher ([`crate::batcher`]) drains a micro-batch fully
//! before admitting the next one, so a finished session's lane sits idle
//! until the whole wave completes, and a newly arrived session waits for
//! the next wave. The continuous scheduler closes both gaps:
//!
//! * **Join** — between any two decode steps, queued requests are
//!   admitted into free lanes (non-blocking: a running batch never waits
//!   for joiners; an *empty* engine blocks, burning no CPU).
//! * **Step** — all active lanes advance one token together, using the
//!   pre-built inference [`ExecPlan`](echo_graph::ExecPlan) for the
//!   *current* lane count ([`Engine::plans`](crate::Engine::plans)).
//! * **Leave** — lanes whose stream is finished retire immediately
//!   (state back to the cache, `Done` on the stream), and the remaining
//!   lanes *compact* down to a dense prefix so the next step runs the
//!   smallest matching plan.
//!
//! **Why compaction cannot change anyone's bits.** The decode path is
//! batch-invariant: every operator computes row `b` of its output from
//! row `b` of its inputs with a fixed per-element floating-point
//! sequence, so a session's logits depend only on its own token and
//! state — not on its lane index, the lane count, or which neighbors
//! come and go. A session's logit stream is therefore bit-identical
//! regardless of when its neighbors join or leave, which
//! `crates/serve/tests/continuous_bitexact.rs` pins against isolated
//! single-session decode under every matmul policy.
//!
//! One invariant carries over from the wave batcher: **at most one
//! request per session in flight on the worker**. A second request for
//! an active session needs the state its predecessor is still
//! producing, so it parks in a per-session FIFO and joins when its
//! predecessor leaves.

use crate::engine::{argmax, ServeError, StepOutput, StreamEvent, Worker, WorkerMetrics};
use crate::queue::{BoundedQueue, Popped};
use echo_models::LmState;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// One admitted request, as the workers see it. Single-step submissions
/// and generation streams are the same job shape: a prompt to consume
/// and a number of tokens to emit.
pub(crate) struct Job {
    pub(crate) session: u64,
    pub(crate) tenant: u64,
    pub(crate) prompt: Vec<u32>,
    pub(crate) max_new: usize,
    pub(crate) reply: Reply,
    pub(crate) submitted: Instant,
}

/// Where a job's output goes: a one-shot step reply or an event stream.
pub(crate) enum Reply {
    /// A [`Ticket`](crate::Ticket): exactly one `StepOutput` (or error).
    Step(BoundedQueue<Result<StepOutput, ServeError>>),
    /// A [`StreamTicket`](crate::StreamTicket): `Token*` then `Done`.
    Stream(BoundedQueue<StreamEvent>),
}

impl Reply {
    /// Emits generated token `index` with its logits.
    pub(crate) fn token(&self, index: usize, logits: Vec<f32>, batch: usize) {
        match self {
            Reply::Step(q) => {
                let _ = q.try_push(Ok(StepOutput {
                    logits,
                    batch_size: batch,
                }));
            }
            Reply::Stream(q) => {
                let token = argmax(&logits);
                let _ = q.try_push(StreamEvent::Token {
                    index,
                    token,
                    logits,
                    batch,
                });
            }
        }
    }

    /// Ends the stream successfully and closes the channel.
    pub(crate) fn done(&self, generated: usize, latency: Duration) {
        if let Reply::Stream(q) = self {
            let _ = q.try_push(StreamEvent::Done { generated, latency });
        }
        self.close();
    }

    /// Ends the stream with an error and closes the channel.
    pub(crate) fn fail(&self, error: ServeError) {
        match self {
            Reply::Step(q) => {
                let _ = q.try_push(Err(error));
            }
            Reply::Stream(q) => {
                let _ = q.try_push(StreamEvent::Error(error));
            }
        }
        self.close();
    }

    fn close(&self) {
        match self {
            Reply::Step(q) => q.close(),
            Reply::Stream(q) => q.close(),
        }
    }
}

/// One lane of the running batch: a session mid-generation.
struct Lane {
    job: Job,
    state: LmState,
    /// Prompt tokens not yet consumed (prefill remainder).
    pending: VecDeque<u32>,
    /// The token this lane consumes on the next step.
    next: u32,
    /// Tokens emitted so far (`== job.max_new` means finished).
    emitted: usize,
}

impl Lane {
    /// Whether the next step is still consuming prompt (no emission).
    fn prefilling(&self) -> bool {
        !self.pending.is_empty()
    }
}

impl Worker {
    /// The continuous scheduler loop. Runs until the admission queue is
    /// closed *and* every admitted request — active, parked or still
    /// queued — has been answered: shutdown never drops accepted work.
    pub(crate) fn run_continuous(mut self) {
        let max_lanes = self.policy.max_batch.max(1);
        let mut lanes: Vec<Lane> = Vec::new();
        // Jobs for sessions that already have a request in flight, FIFO
        // per session. They join when their predecessor leaves.
        let mut parked: HashMap<u64, VecDeque<Job>> = HashMap::new();
        let mut local = WorkerMetrics::default();
        let mut closed = false;

        loop {
            // ── Join ─────────────────────────────────────────────────
            while lanes.len() < max_lanes {
                if let Some(job) = unpark(&mut parked, &lanes) {
                    self.admit(job, &mut lanes, &mut local);
                    continue;
                }
                if lanes.is_empty() && !closed && parked.is_empty() {
                    // Idle engine: block for the next request, burning
                    // no CPU. (With parked jobs, unpark above always
                    // succeeds on an empty batch, so no deadlock here.)
                    match self.queue.pop_wait() {
                        Some(job) => self.intake(job, &mut lanes, &mut parked, &mut local),
                        None => closed = true,
                    }
                } else {
                    // Running batch: admit whatever is queued right now,
                    // but never wait for joiners.
                    match self.queue.try_pop() {
                        Popped::Item(job) => self.intake(job, &mut lanes, &mut parked, &mut local),
                        Popped::TimedOut => break,
                        Popped::Closed => {
                            closed = true;
                            break;
                        }
                    }
                }
            }

            if lanes.is_empty() {
                if closed && parked.is_empty() {
                    break; // fully drained
                }
                continue;
            }

            // ── Step ─────────────────────────────────────────────────
            let b = lanes.len();
            let tokens: Vec<u32> = lanes.iter().map(|l| l.next).collect();
            let states: Vec<LmState> = lanes
                .iter_mut()
                .map(|l| {
                    std::mem::replace(
                        &mut l.state,
                        LmState {
                            h: Vec::new(),
                            c: Vec::new(),
                        },
                    )
                })
                .collect();
            self.install_plan(b);
            match self.decoder.infer_step(&mut self.exec, &tokens, &states) {
                Ok((logits, next_states)) => {
                    local.steps += 1;
                    local.lanes_stepped += b as u64;
                    local.max_batch = local.max_batch.max(b);
                    for ((lane, lane_logits), state) in
                        lanes.iter_mut().zip(logits).zip(next_states)
                    {
                        self.history
                            .entry(lane.job.session)
                            .or_default()
                            .push(lane.next);
                        lane.state = state;
                        if let Some(p) = lane.pending.pop_front() {
                            lane.next = p; // prefill continues, no emission
                            continue;
                        }
                        let token = argmax(&lane_logits);
                        lane.job.reply.token(lane.emitted, lane_logits, b);
                        lane.emitted += 1;
                        lane.next = token;
                    }
                }
                Err(e) => {
                    // The whole step failed; every lane's stream errors
                    // and the batch resets.
                    let err = ServeError::Exec(e.to_string());
                    for lane in lanes.drain(..) {
                        local.leaves += 1;
                        self.ledger.release(lane.job.tenant);
                        lane.job.reply.fail(err.clone());
                    }
                    self.publish(&mut local);
                    continue;
                }
            }

            // ── Leave & compact ──────────────────────────────────────
            // `Vec::remove` shifts the survivors down in order: the next
            // step sees a dense lane prefix and can use the exact-size
            // plan. Order preservation is cosmetic (batch invariance),
            // but keeps per-session event interleaving intuitive.
            let mut i = 0;
            while i < lanes.len() {
                if lanes[i].emitted == lanes[i].job.max_new && !lanes[i].prefilling() {
                    let lane = lanes.remove(i);
                    local.leaves += 1;
                    local.completed += 1;
                    self.cache.put(lane.job.session, lane.state);
                    self.ledger.release(lane.job.tenant);
                    let latency = lane.job.submitted.elapsed();
                    self.latency.record(latency);
                    lane.job.reply.done(lane.emitted, latency);
                } else {
                    i += 1;
                }
            }

            self.publish(&mut local);
        }
    }

    /// Routes a freshly popped job: park it if its session already has a
    /// request in flight (active lane or earlier parked job), otherwise
    /// admit it into a lane.
    fn intake(
        &mut self,
        job: Job,
        lanes: &mut Vec<Lane>,
        parked: &mut HashMap<u64, VecDeque<Job>>,
        local: &mut WorkerMetrics,
    ) {
        let busy =
            lanes.iter().any(|l| l.job.session == job.session) || parked.contains_key(&job.session);
        if busy {
            parked.entry(job.session).or_default().push_back(job);
        } else {
            self.admit(job, lanes, local);
        }
    }

    /// Resolves the session's state (cache hit or bit-exact re-warm) and
    /// opens a lane for the job.
    fn admit(&mut self, mut job: Job, lanes: &mut Vec<Lane>, local: &mut WorkerMetrics) {
        let state = match self.resolve_state(job.session, local) {
            Ok(state) => state,
            Err(e) => {
                self.ledger.release(job.tenant);
                job.reply.fail(e);
                return;
            }
        };
        local.joins += 1;
        let mut pending: VecDeque<u32> = std::mem::take(&mut job.prompt).into();
        let next = pending.pop_front().expect("prompt validated non-empty");
        lanes.push(Lane {
            job,
            state,
            pending,
            next,
            emitted: 0,
        });
    }
}

/// The first parked job whose session is no longer active. FIFO within a
/// session is structural (`VecDeque`); across sessions the iteration
/// order is arbitrary, which is fine — parked jobs only compete when
/// lanes are free.
fn unpark(parked: &mut HashMap<u64, VecDeque<Job>>, lanes: &[Lane]) -> Option<Job> {
    let session = *parked
        .keys()
        .find(|s| !lanes.iter().any(|l| l.job.session == **s))?;
    let queue = parked.get_mut(&session).expect("key just found");
    let job = queue.pop_front().expect("parked queues are never empty");
    if queue.is_empty() {
        parked.remove(&session);
    }
    Some(job)
}
