//! Capacity-bounded LRU cache of per-session recurrent state.
//!
//! A session's [`LmState`] is small (2 × layers × hidden floats) but a
//! server can see unboundedly many sessions, so live states are held in an
//! LRU cache of fixed capacity. Eviction is *not* an error: the engine
//! keeps every session's token history and re-warms an evicted session by
//! replaying its prefix from the zero state — which, by the decode path's
//! batch invariance, reproduces the evicted state bit-for-bit. The
//! eviction test in `tests/session_eviction.rs` pins that contract.

use echo_models::LmState;
use std::collections::HashMap;

/// LRU map from session id to recurrent state.
///
/// Recency is a monotone tick stamped on every access; eviction scans for
/// the minimum tick. Capacities are serving-cache sized (tens to a few
/// thousand), where the O(capacity) scan is noise next to a decode step.
#[derive(Debug)]
pub struct SessionCache {
    capacity: usize,
    entries: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    state: LmState,
    last_used: u64,
}

impl SessionCache {
    /// Creates a cache holding at most `capacity` sessions (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SessionCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `session`, refreshing its recency. A miss means the
    /// session is new *or* was evicted; the caller decides which via its
    /// own history.
    pub fn get(&mut self, session: u64) -> Option<LmState> {
        self.tick += 1;
        match self.entries.get_mut(&session) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(e.state.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks `session`'s state *out* of the cache, moving it to the
    /// caller instead of cloning it — the decode hot path checks state
    /// out, steps, and checks the successor back in with [`put`], so the
    /// 2 × layers row vectors never need a per-lane copy. While checked
    /// out the entry is simply absent; if the step fails before `put`,
    /// the session's token history still reconstructs the state exactly.
    ///
    /// [`put`]: SessionCache::put
    pub fn take(&mut self, session: u64) -> Option<LmState> {
        self.tick += 1;
        match self.entries.remove(&session) {
            Some(e) => {
                self.hits += 1;
                Some(e.state)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or refreshes `session`'s state, evicting the
    /// least-recently-used entry if the cache would exceed capacity.
    pub fn put(&mut self, session: u64, state: LmState) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&session) {
            e.state = state;
            e.last_used = tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| id)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            session,
            Entry {
                state,
                last_used: tick,
            },
        );
    }

    /// Sessions currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no session is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found a resident state.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing (new or evicted session).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// States dropped to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(v: f32) -> LmState {
        LmState {
            h: vec![vec![v; 2]],
            c: vec![vec![-v; 2]],
        }
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut cache = SessionCache::new(2);
        cache.put(1, st(1.0));
        cache.put(2, st(2.0));
        assert!(cache.get(1).is_some()); // 2 is now the LRU entry
        cache.put(3, st(3.0));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(2).is_none(), "LRU session 2 was evicted");
        assert_eq!(cache.get(1).unwrap(), st(1.0));
        assert_eq!(cache.get(3).unwrap(), st(3.0));
    }

    #[test]
    fn put_refreshes_existing_without_eviction() {
        let mut cache = SessionCache::new(2);
        cache.put(1, st(1.0));
        cache.put(2, st(2.0));
        cache.put(1, st(9.0));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1).unwrap(), st(9.0));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut cache = SessionCache::new(1);
        assert!(cache.get(5).is_none());
        cache.put(5, st(0.5));
        assert!(cache.get(5).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }
}
