//! A dependency-free JSON subset for the line protocol.
//!
//! The front end speaks newline-delimited JSON. The workspace is built
//! offline against vendored shims, so rather than lean on a serde stack
//! this module implements exactly the JSON the protocol needs: objects,
//! arrays, strings (with `\uXXXX` escapes), numbers, booleans and null.
//! Requests are parsed into a [`JsonValue`] tree; responses are emitted
//! with [`escape`] + `format!` in [`crate::frontend`]. The parser is
//! shared with tests and example clients, so both sides of the wire
//! agree on the dialect.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document from `text` (trailing whitespace ok).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u32` token array, if every element is one.
    pub fn as_tokens(&self) -> Option<Vec<u32>> {
        match self {
            JsonValue::Arr(items) => items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .map(|n| n as u32)
                })
                .collect(),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&byte) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid by construction).
                let width = match byte {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let slice =
                    std::str::from_utf8(&bytes[*pos..*pos + width]).map_err(|e| e.to_string())?;
                out.push_str(slice);
                *pos += width;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // {
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

/// A string escaped for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f32` so it round-trips bit-exactly through the wire
/// (Rust's shortest-roundtrip float formatting).
pub struct WireF32(pub f32);

impl fmt::Display for WireF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_finite() {
            write!(f, "{}", self.0)
        } else {
            // JSON has no Inf/NaN; the protocol maps them to null.
            write!(f, "null")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_generate_request() {
        let v = JsonValue::parse(
            r#"{"op":"generate","session":9,"prompt":[1, 2, 44],"max_new_tokens":8,"tenant":3,"logits":true}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("generate"));
        assert_eq!(v.get("session").and_then(JsonValue::as_u64), Some(9));
        assert_eq!(
            v.get("prompt").and_then(JsonValue::as_tokens),
            Some(vec![1, 2, 44])
        );
        assert_eq!(v.get("max_new_tokens").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(v.get("logits").and_then(JsonValue::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_and_escaped() {
        let v = JsonValue::parse(r#"{"a":[{"b":"x\nyA"},null,false,-1.5e2]}"#).unwrap();
        let arr = match v.get("a").unwrap() {
            JsonValue::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].get("b").and_then(JsonValue::as_str), Some("x\nyA"));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2], JsonValue::Bool(false));
        assert_eq!(arr[3].as_f64(), Some(-150.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse(r#"{"a":}"#).is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("[1] trailing").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nquote\" slash\\ tab\t ctrl\u{0001} unicode\u{00e9}";
        let doc = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn wire_f32_round_trips_bits() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xbf00_0000] {
            let x = f32::from_bits(bits);
            let text = format!("{}", WireF32(x));
            let back: f32 = text.parse().unwrap();
            assert_eq!(back.to_bits(), bits, "{text} must round-trip");
        }
    }
}
