//! The continuous-batching contract: lane churn never changes a
//! session's bits.
//!
//! Sessions with *different* prompt lengths and generation lengths are
//! pipelined through a small-lane continuous engine, so sessions join
//! and leave the running batch in the middle of their neighbors'
//! streams (the `batch` field of the token events proves it). For every
//! matmul policy, each session's full logit stream must be bit-identical
//! to replaying that session alone, one `[1, 1]` step at a time, through
//! a fresh plan-less executor. This file holds a single `#[test]` on
//! purpose: the matmul policy is process-global, so no other test in
//! this binary may race it.

use echo_graph::{Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{LmState, WordLmDecoder, WordLmHyper};
use echo_rnn::LstmBackend;
use echo_serve::{BatchMode, Engine, GenRequest, ServeConfig, StreamEvent};
use echo_tensor::policy::{set_matmul_policy, MatmulBackend, MatmulPolicy};
use std::sync::Arc;

const SEED: u64 = 43;
const VOCAB: usize = 31;
const SESSIONS: u64 = 7;
const MAX_LANES: usize = 3;

fn hyper() -> WordLmHyper {
    WordLmHyper::tiny(VOCAB, LstmBackend::Default)
}

/// Deliberately ragged request shapes: prompt lengths 1..=3 and
/// generation lengths 4..=8, so no two neighbors finish together and
/// every completion triggers a mid-stream join for the next session.
fn prompt(session: u64) -> Vec<u32> {
    (0..=(session % 3))
        .map(|i| ((session * 13 + i * 5 + 2) % VOCAB as u64) as u32)
        .collect()
}

fn max_new(session: u64) -> usize {
    4 + (session as usize * 3) % 5
}

/// Replays one session alone at B = 1 through a fresh plan-less
/// executor: prefill the prompt, then greedy-decode, collecting the
/// logits of every emitted token.
fn isolated_reference(session: u64) -> Vec<Vec<f32>> {
    let dec = WordLmDecoder::build(hyper());
    let mut exec = Executor::new(
        Arc::clone(&dec.graph),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0),
    );
    dec.bind_params(&mut exec, SEED).unwrap();
    let mut state = LmState::zero(dec.hyper.layers, dec.hyper.hidden);
    let mut next_inputs = prompt(session);
    next_inputs.reverse(); // pop from the back = consume in order
    let mut next = next_inputs.pop().unwrap();
    let mut streamed = Vec::new();
    while streamed.len() < max_new(session) {
        let (logits, states) = dec
            .infer_step(&mut exec, &[next], std::slice::from_ref(&state))
            .unwrap();
        state = states.into_iter().next().unwrap();
        if let Some(p) = next_inputs.pop() {
            next = p; // still prefilling, nothing emitted
            continue;
        }
        let row = logits.into_iter().next().unwrap();
        next = argmax(&row);
        streamed.push(row);
    }
    streamed
}

fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

#[test]
fn continuous_batching_is_bit_identical_under_lane_churn() {
    let policies = [
        MatmulPolicy::Auto,
        MatmulPolicy::Fixed(MatmulBackend::Naive),
        MatmulPolicy::Fixed(MatmulBackend::Blocked),
        MatmulPolicy::Fixed(MatmulBackend::PackedParallel),
    ];
    for policy in policies {
        set_matmul_policy(policy);

        let mut engine = Engine::start(
            hyper(),
            SEED,
            ServeConfig {
                // More sessions than lanes: the batch is always full
                // while the backlog lasts, and every leave admits the
                // next session into the middle of its neighbors'
                // streams.
                max_batch: MAX_LANES,
                queue_capacity: 64,
                workers: 1,
                mode: BatchMode::Continuous,
                ..ServeConfig::default()
            },
        )
        .unwrap();

        let tickets: Vec<_> = (0..SESSIONS)
            .map(|s| {
                engine
                    .generate(GenRequest::new(s, prompt(s), max_new(s)))
                    .expect("queue sized for the whole backlog")
            })
            .collect();

        let mut saw_churned_stream = false;
        for (session, ticket) in tickets.into_iter().enumerate() {
            let mut streamed: Vec<Vec<f32>> = Vec::new();
            let mut batches: Vec<usize> = Vec::new();
            let mut done = None;
            while let Some(event) = ticket.next() {
                match event {
                    StreamEvent::Token {
                        index,
                        token,
                        logits,
                        batch,
                    } => {
                        assert_eq!(index, streamed.len(), "tokens arrive in order");
                        assert_eq!(token, argmax(&logits));
                        streamed.push(logits);
                        batches.push(batch);
                    }
                    StreamEvent::Done { generated, .. } => {
                        done = Some(generated);
                    }
                    StreamEvent::Error(e) => panic!("session {session} errored: {e}"),
                }
            }
            assert_eq!(done, Some(max_new(session as u64)), "stream ran to Done");
            // A stream whose lane count changed between its own tokens
            // lived through neighbors joining or leaving mid-stream.
            saw_churned_stream |= batches.windows(2).any(|w| w[0] != w[1]);

            let reference = isolated_reference(session as u64);
            assert_eq!(streamed.len(), reference.len());
            for (step, (got, want)) in streamed.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got, want,
                    "policy {policy:?}: session {session} token {step} must be \
                     bit-identical to its isolated replay"
                );
            }
        }
        assert!(
            saw_churned_stream,
            "policy {policy:?}: no session saw its lane count change \
             mid-stream, so the test never exercised join/leave churn"
        );

        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(stats.completed, SESSIONS, "every stream answered");
        assert_eq!(stats.joins, SESSIONS, "each session joined once");
        assert_eq!(stats.leaves, SESSIONS, "each session left once");
        assert_eq!(stats.max_batch_observed, MAX_LANES, "the batch filled");
        assert!(stats.steps > 0);
        let occupancy = stats.occupancy();
        assert!(
            occupancy > 1.0 && occupancy <= MAX_LANES as f64,
            "occupancy {occupancy} out of range"
        );
        assert!(stats.churn_per_step() > 0.0);
    }
    set_matmul_policy(MatmulPolicy::Auto);
}
