//! The line-protocol front end, end to end over real TCP: request
//! framing, streamed token events, wire-exact logits, the `STATS`
//! endpoint, per-tenant admission quotas, and the connection cap.

use echo_models::WordLmHyper;
use echo_rnn::LstmBackend;
use echo_serve::{
    Engine, Frontend, FrontendConfig, GenRequest, JsonValue, ServeConfig, StreamEvent,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 47;
const VOCAB: usize = 41;

fn hyper() -> WordLmHyper {
    WordLmHyper::tiny(VOCAB, LstmBackend::Default)
}

fn start(config: ServeConfig) -> (Arc<Engine>, Frontend) {
    let engine = Arc::new(Engine::start(hyper(), SEED, config).unwrap());
    let frontend = Frontend::start(Arc::clone(&engine), FrontendConfig::default()).unwrap();
    (engine, frontend)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(frontend: &Frontend) -> Client {
        let writer = TcpStream::connect(frontend.local_addr()).unwrap();
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "server closed mid-conversation");
        JsonValue::parse(line.trim()).unwrap_or_else(|e| panic!("bad frame {line:?}: {e}"))
    }

    fn event(v: &JsonValue) -> &str {
        v.get("event").and_then(JsonValue::as_str).unwrap()
    }
}

#[test]
fn generate_streams_wire_exact_tokens_and_logits() {
    let (engine, frontend) = start(ServeConfig::default());

    // The same request straight through the engine, on a different
    // session (fresh state, same model) — the TCP stream must match it
    // token for token and logit for logit.
    let prompt = vec![5u32, 17, 2];
    let max_new = 6usize;
    let direct = engine
        .generate(GenRequest::new(1001, prompt.clone(), max_new))
        .unwrap();
    let mut want_tokens = Vec::new();
    let mut want_logits = Vec::new();
    while let Some(event) = direct.next() {
        match event {
            StreamEvent::Token { token, logits, .. } => {
                want_tokens.push(token);
                want_logits.push(logits);
            }
            StreamEvent::Done { .. } => break,
            StreamEvent::Error(e) => panic!("direct stream errored: {e}"),
        }
    }
    assert_eq!(want_tokens.len(), max_new);

    let mut client = Client::connect(&frontend);
    client.send(
        "{\"op\":\"generate\",\"session\":7,\"prompt\":[5,17,2],\
         \"max_new_tokens\":6,\"logits\":true}",
    );
    let mut got_tokens = Vec::new();
    let mut got_logits: Vec<Vec<f32>> = Vec::new();
    loop {
        let frame = client.recv();
        match Client::event(&frame) {
            "token" => {
                let index = frame.get("index").and_then(JsonValue::as_u64).unwrap();
                assert_eq!(index as usize, got_tokens.len(), "in-order delivery");
                assert_eq!(
                    frame.get("session").and_then(JsonValue::as_u64),
                    Some(7),
                    "events carry their session"
                );
                got_tokens.push(frame.get("token").and_then(JsonValue::as_u64).unwrap() as u32);
                let row = match frame.get("logits") {
                    Some(JsonValue::Arr(xs)) => xs
                        .iter()
                        .map(|x| x.as_f64().expect("numeric logit") as f32)
                        .collect::<Vec<f32>>(),
                    other => panic!("logits missing: {other:?}"),
                };
                got_logits.push(row);
            }
            "done" => {
                assert_eq!(
                    frame.get("generated").and_then(JsonValue::as_u64),
                    Some(max_new as u64)
                );
                break;
            }
            other => panic!("unexpected event {other}"),
        }
    }
    assert_eq!(got_tokens, want_tokens, "argmax stream matches the engine");
    // Shortest-roundtrip float formatting makes the wire bit-exact.
    for (step, (got, want)) in got_logits.iter().zip(&want_logits).enumerate() {
        assert_eq!(
            got, want,
            "token {step}: logits must round-trip bit-exactly"
        );
    }

    // A single step on the same connection continues the session.
    client.send("{\"op\":\"step\",\"session\":7,\"token\":3}");
    let frame = client.recv();
    assert_eq!(Client::event(&frame), "token");
    assert_eq!(frame.get("index").and_then(JsonValue::as_u64), Some(0));
}

#[test]
fn stats_endpoint_reports_service_counters() {
    let (engine, frontend) = start(ServeConfig::default());
    let mut client = Client::connect(&frontend);

    client.send("{\"op\":\"ping\"}");
    assert_eq!(Client::event(&client.recv()), "pong");

    client.send("{\"op\":\"generate\",\"session\":3,\"prompt\":[1,2],\"max_new_tokens\":4}");
    let mut frames = 0;
    loop {
        let frame = client.recv();
        if Client::event(&frame) == "done" {
            break;
        }
        frames += 1;
    }
    assert_eq!(frames, 4);

    // Bare `STATS` line and the JSON op must both answer.
    client.send("STATS");
    let stats = client.recv();
    assert_eq!(Client::event(&stats), "stats");
    for key in [
        "submitted",
        "completed",
        "queue_depth",
        "steps",
        "occupancy",
        "joins",
        "leaves",
        "churn_per_step",
        "cache_hit_rate",
        "evictions",
        "pool_reuse_hits",
        "p50_us",
        "p95_us",
        "p99_us",
    ] {
        assert!(stats.get(key).is_some(), "STATS is missing {key}");
    }
    assert!(stats.get("completed").and_then(JsonValue::as_u64) >= Some(1));
    assert!(stats.get("joins").and_then(JsonValue::as_u64) >= Some(1));
    assert!(stats.get("p99_us").and_then(JsonValue::as_f64).unwrap() > 0.0);

    client.send("{\"op\":\"stats\"}");
    assert_eq!(Client::event(&client.recv()), "stats");

    // Malformed and unknown requests answer with errors, and the
    // connection survives them.
    client.send("{not json");
    let err = client.recv();
    assert_eq!(Client::event(&err), "error");
    assert_eq!(err.get("code").and_then(JsonValue::as_str), Some("invalid"));
    client.send("{\"op\":\"warp\"}");
    assert_eq!(
        client.recv().get("code").and_then(JsonValue::as_str),
        Some("invalid")
    );
    client.send("{\"op\":\"generate\",\"session\":3,\"prompt\":[]}");
    assert_eq!(
        client.recv().get("code").and_then(JsonValue::as_str),
        Some("invalid")
    );
    client.send("{\"op\":\"ping\"}");
    assert_eq!(Client::event(&client.recv()), "pong");
    drop(engine);
}

#[test]
fn tenant_quota_rejects_over_the_wire() {
    let (engine, frontend) = start(ServeConfig {
        tenant_inflight_limit: 1,
        ..ServeConfig::default()
    });

    // Fill tenant 9's single in-flight slot with a long generation. The
    // ledger slot is taken synchronously at admission, so until this
    // stream finishes the tenant is at its cap.
    let long = engine
        .generate(GenRequest::new(500, vec![1], 2000).with_tenant(9))
        .unwrap();

    let mut client = Client::connect(&frontend);
    client.send(
        "{\"op\":\"generate\",\"session\":501,\"prompt\":[2],\
         \"max_new_tokens\":1,\"tenant\":9}",
    );
    let frame = client.recv();
    assert_eq!(Client::event(&frame), "error");
    assert_eq!(frame.get("code").and_then(JsonValue::as_str), Some("quota"));

    // Another tenant is unaffected.
    client.send(
        "{\"op\":\"generate\",\"session\":502,\"prompt\":[2],\
         \"max_new_tokens\":1,\"tenant\":8}",
    );
    assert_eq!(Client::event(&client.recv()), "token");
    assert_eq!(Client::event(&client.recv()), "done");

    while let Some(event) = long.next() {
        if matches!(event, StreamEvent::Done { .. }) {
            break;
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.quota_rejected, 1);
}

#[test]
fn connection_cap_rejects_not_blocks() {
    let engine = Arc::new(Engine::start(hyper(), SEED, ServeConfig::default()).unwrap());
    let frontend = Frontend::start(
        Arc::clone(&engine),
        FrontendConfig {
            max_connections: 0,
            ..FrontendConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&frontend);
    let frame = client.recv();
    assert_eq!(Client::event(&frame), "error");
    assert_eq!(
        frame.get("code").and_then(JsonValue::as_str),
        Some("overloaded")
    );
}
