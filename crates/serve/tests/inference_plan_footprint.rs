//! Acceptance: for the served model and shapes, the inference-mode plan
//! is strictly leaner than the training plan — smaller slot arena,
//! shorter launch table, lower planned peak — and the compiler front-end
//! (`EchoCompiler::compile_inference`) reports the same footprint the
//! engine's plans carry.

use echo::{EchoCompiler, EchoConfig};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::WordLmHyper;
use echo_rnn::LstmBackend;
use echo_serve::{Engine, ServeConfig};
use std::collections::HashMap;
use std::sync::Arc;

#[test]
fn inference_plans_are_strictly_leaner_than_training() {
    let hyper = WordLmHyper::tiny(33, LstmBackend::Default);
    let engine = Engine::start(hyper, 13, ServeConfig::default()).unwrap();
    let dec = engine.decoder();

    let mut exec = Executor::new(
        Arc::clone(&dec.graph),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0),
    );
    dec.bind_params(&mut exec, 13).unwrap();

    for (i, inference) in engine.plans().iter().enumerate() {
        let batch = i + 1;
        let bindings = dec.symbolic_bindings(batch);
        // The training plan for the same graph, same shapes, same target
        // cone root (the logits).
        let training = exec
            .plan_for(
                &bindings,
                dec.logits,
                ExecOptions {
                    training: true,
                    numeric: true,
                },
            )
            .unwrap();
        assert!(training.training());
        assert!(!inference.training());
        assert!(
            inference.arena_bytes() < training.arena_bytes(),
            "B={batch}: inference arena {} must be strictly below training {}",
            inference.arena_bytes(),
            training.arena_bytes()
        );
        assert!(
            inference.launch_count() < training.launch_count(),
            "B={batch}: inference launches {} vs training {}",
            inference.launch_count(),
            training.launch_count()
        );
        assert!(
            inference.planned_peak_bytes() < training.planned_peak_bytes(),
            "B={batch}: inference peak {} vs training {}",
            inference.planned_peak_bytes(),
            training.planned_peak_bytes()
        );
    }
}

#[test]
fn compiler_front_end_reports_the_engine_plan_footprint() {
    let hyper = WordLmHyper::tiny(33, LstmBackend::Default);
    let engine = Engine::start(hyper, 13, ServeConfig::default()).unwrap();
    let dec = engine.decoder();

    let mut exec = Executor::new(
        Arc::clone(&dec.graph),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0),
    );
    dec.bind_params(&mut exec, 13).unwrap();
    let param_shapes: HashMap<_, _> = exec
        .param_ids()
        .into_iter()
        .map(|id| (id, exec.param(id).unwrap().shape().clone()))
        .collect();

    let batch = 4;
    let compiled = EchoCompiler::new(EchoConfig::default())
        .compile_inference(
            &dec.graph,
            &dec.symbolic_bindings(batch),
            &param_shapes,
            dec.outputs(),
        )
        .unwrap();
    let from_compiler = compiled.exec_plan.expect("compile_inference builds a plan");
    let from_engine = &engine.plans()[batch - 1];
    assert_eq!(from_compiler.arena_bytes(), from_engine.arena_bytes());
    assert_eq!(from_compiler.launch_count(), from_engine.launch_count());
    assert_eq!(
        compiled.report.planned_peak_bytes,
        Some(from_engine.planned_peak_bytes())
    );
}
