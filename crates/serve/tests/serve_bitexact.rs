//! The serving contract: batching never changes a session's bits.
//!
//! For every matmul policy, an engine that coalesces concurrent sessions
//! into micro-batches (running inference-mode plans on a worker replica)
//! must produce, for each session, logits bit-identical to replaying that
//! session alone, one `[1, 1]` step at a time, through a plan-less
//! executor. This file holds a single `#[test]` on purpose: the matmul
//! policy is process-global, so no other test in this binary may race it.

use echo_graph::{Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{LmState, WordLmDecoder, WordLmHyper};
use echo_rnn::LstmBackend;
use echo_serve::{BatchMode, Engine, ServeConfig, ServeError, Ticket};
use echo_tensor::policy::{set_matmul_policy, MatmulBackend, MatmulPolicy};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 41;
const VOCAB: usize = 37;
const SESSIONS: u64 = 5;
const TOKENS_PER_SESSION: usize = 7;

fn hyper() -> WordLmHyper {
    WordLmHyper::tiny(VOCAB, LstmBackend::Default)
}

fn session_tokens(session: u64) -> Vec<u32> {
    (0..TOKENS_PER_SESSION)
        .map(|i| ((session * 11 + i as u64 * 5 + 3) % VOCAB as u64) as u32)
        .collect()
}

/// Replays one session alone at B = 1 through a fresh plan-less executor.
fn unbatched_reference(session: u64) -> Vec<Vec<f32>> {
    let dec = WordLmDecoder::build(hyper());
    let mut exec = Executor::new(
        Arc::clone(&dec.graph),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0),
    );
    dec.bind_params(&mut exec, SEED).unwrap();
    let mut state = LmState::zero(dec.hyper.layers, dec.hyper.hidden);
    let mut logits = Vec::new();
    for &token in &session_tokens(session) {
        let (l, s) = dec
            .infer_step(&mut exec, &[token], std::slice::from_ref(&state))
            .unwrap();
        logits.push(l.into_iter().next().unwrap());
        state = s.into_iter().next().unwrap();
    }
    logits
}

#[test]
fn batched_serving_is_bit_identical_for_every_matmul_policy() {
    let policies = [
        MatmulPolicy::Auto,
        MatmulPolicy::Fixed(MatmulBackend::Naive),
        MatmulPolicy::Fixed(MatmulBackend::Blocked),
        MatmulPolicy::Fixed(MatmulBackend::PackedParallel),
    ];
    for policy in policies {
        set_matmul_policy(policy);

        let mut engine = Engine::start(
            hyper(),
            SEED,
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(100),
                queue_capacity: 256,
                workers: 1,
                // Pin the wave scheduler: this file is the wave
                // baseline's regression test; the continuous scheduler
                // has its own sweep in continuous_bitexact.rs.
                mode: BatchMode::Wave,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(engine.plans().len(), 4, "one plan per batch size");

        // Pipeline every session's whole request stream before waiting:
        // the worker's batcher coalesces across sessions while per-session
        // FIFO order keeps state threading causal.
        let mut tickets: Vec<Vec<Ticket>> = Vec::new();
        for session in 0..SESSIONS {
            let mut per_session = Vec::new();
            for &token in &session_tokens(session) {
                per_session.push(submit_with_retry(&engine, session, token));
            }
            tickets.push(per_session);
        }

        let mut coalesced = false;
        for (session, per_session) in tickets.into_iter().enumerate() {
            let reference = unbatched_reference(session as u64);
            for (step, ticket) in per_session.into_iter().enumerate() {
                let out = ticket.wait().unwrap();
                coalesced |= out.batch_size > 1;
                assert_eq!(
                    out.logits, reference[step],
                    "policy {:?}: session {session} step {step} must be \
                     bit-identical to its unbatched replay",
                    policy
                );
            }
        }
        assert!(
            coalesced,
            "policy {policy:?}: the engine never batched, so the test \
             exercised nothing beyond B = 1"
        );

        // Join the workers so the final batch's counters are published.
        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(
            stats.completed,
            SESSIONS * TOKENS_PER_SESSION as u64,
            "every accepted request is answered"
        );
        assert!(stats.max_batch_observed >= 2);
        assert!(
            stats.pool_reuse_hits > 0,
            "decode steps must recycle pooled storage across requests"
        );
    }
    set_matmul_policy(MatmulPolicy::Auto);
}

fn submit_with_retry(engine: &Engine, session: u64, token: u32) -> Ticket {
    loop {
        match engine.submit(session, token) {
            Ok(ticket) => return ticket,
            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("submit failed: {e}"),
        }
    }
}
