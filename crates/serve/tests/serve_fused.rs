//! Serving the fused decode graph changes launch counts, not bits.
//!
//! `ServeConfig { fuse: true }` swaps the decoder graph for its GIR
//! pipeline rewrite (merging CSE + LSTM-cell fusion + elementwise-chain
//! fusion) before the engine builds its plans. This must be completely
//! transparent to clients: per-step logits (and therefore greedy argmax
//! decodes) are bit-identical to an unfused engine with the same seed,
//! while the per-step inference plans carry strictly fewer forward
//! launches.

use echo_models::WordLmHyper;
use echo_rnn::LstmBackend;
use echo_serve::{Engine, ServeConfig, ServeError, StepOutput};
use std::time::Duration;

const SEED: u64 = 53;
const VOCAB: usize = 31;
const SESSIONS: u64 = 3;
const TOKENS_PER_SESSION: usize = 6;

fn start(fuse: bool) -> Engine {
    Engine::start(
        WordLmHyper::tiny(VOCAB, LstmBackend::Default),
        SEED,
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            workers: 1,
            fuse,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn run_sessions(engine: &Engine) -> Vec<Vec<StepOutput>> {
    (0..SESSIONS)
        .map(|session| {
            (0..TOKENS_PER_SESSION)
                .map(|i| {
                    let token = ((session * 7 + i as u64 * 3 + 1) % VOCAB as u64) as u32;
                    loop {
                        match engine.submit(session, token) {
                            Ok(ticket) => break ticket.wait().unwrap(),
                            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn fused_engine_is_bit_identical_with_fewer_launches() {
    let mut unfused = start(false);
    let mut fused = start(true);

    // Fewer launches per decode step, at every pre-built batch size.
    assert_eq!(unfused.plans().len(), fused.plans().len());
    for (u, f) in unfused.plans().iter().zip(fused.plans()) {
        assert!(
            f.forward_launch_count() < u.forward_launch_count(),
            "fused plan must shrink the launch table: {} vs {}",
            f.forward_launch_count(),
            u.forward_launch_count()
        );
    }

    // Identical bits for every session and step.
    let reference = run_sessions(&unfused);
    let outputs = run_sessions(&fused);
    for (session, (ref_steps, fused_steps)) in reference.iter().zip(&outputs).enumerate() {
        for (step, (r, f)) in ref_steps.iter().zip(fused_steps).enumerate() {
            assert_eq!(
                f.logits, r.logits,
                "session {session} step {step}: fused logits diverge"
            );
            assert_eq!(f.argmax(), r.argmax(), "session {session} step {step}");
        }
    }

    unfused.shutdown();
    fused.shutdown();
}
