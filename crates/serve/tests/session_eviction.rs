//! Satellite: eviction is invisible. With an LRU capacity of K and K + 1
//! live sessions, some session is evicted on every round — and the engine
//! must transparently re-warm it from its token history so its logits
//! stay bit-identical to a session that was never evicted.

use echo_graph::{Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{LmState, WordLmDecoder, WordLmHyper};
use echo_rnn::LstmBackend;
use echo_serve::{Engine, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 77;
const VOCAB: usize = 29;
const CAPACITY: usize = 2;
const SESSIONS: u64 = CAPACITY as u64 + 1;
const ROUNDS: usize = 6;

fn hyper() -> WordLmHyper {
    WordLmHyper::tiny(VOCAB, LstmBackend::Default)
}

fn token(session: u64, round: usize) -> u32 {
    ((session * 7 + round as u64 * 3 + 1) % VOCAB as u64) as u32
}

#[test]
fn evicted_sessions_rewarm_bit_identically() {
    // One worker so all K + 1 sessions share one capacity-K cache, and
    // B = 1 batches so every round touches the sessions one at a time in
    // a deterministic LRU order.
    let mut engine = Engine::start(
        hyper(),
        SEED,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            workers: 1,
            session_capacity: CAPACITY,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Round-robin across K + 1 sessions: by the time a session comes
    // around again, the two others have pushed it out of the cache.
    let mut served: Vec<Vec<Vec<f32>>> = vec![Vec::new(); SESSIONS as usize];
    for round in 0..ROUNDS {
        for session in 0..SESSIONS {
            let out = engine.step(session, token(session, round)).unwrap();
            served[session as usize].push(out.logits);
        }
    }

    // Join the workers so the final round's counters are published.
    engine.shutdown();
    let stats = engine.stats();
    assert!(
        stats.evictions > 0,
        "K + 1 live sessions against a capacity-K cache must evict"
    );
    assert!(
        stats.rewarms > 0,
        "evicted sessions with history must have been re-warmed"
    );
    assert!(stats.rewarm_tokens >= stats.rewarms);

    // The cache counters must account for every request exactly once:
    // each step resolves its session's state with one lookup, and every
    // miss is either a brand-new session (the first SESSIONS lookups) or
    // an eviction re-warm.
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        SESSIONS * ROUNDS as u64,
        "one cache lookup per served step"
    );
    assert_eq!(
        stats.cache_misses,
        SESSIONS + stats.rewarms,
        "every miss is a fresh session or a re-warmed eviction"
    );
    // Round-robin over K + 1 sessions against a capacity-K LRU is the
    // pathological thrash pattern: by the time a session returns, the
    // others have pushed it out, so *every* lookup misses.
    assert_eq!(stats.cache_hits, 0, "K + 1 round-robin thrashes the LRU");
    assert!(stats.cache_hit_rate() == 0.0);
    assert_eq!(
        stats.evictions,
        SESSIONS * ROUNDS as u64 - CAPACITY as u64,
        "every put beyond the first CAPACITY evicts exactly one state"
    );

    // An uninterrupted replay of each session (fresh plan-less executor,
    // same seed, state threaded the whole way, never evicted) must match
    // every served step bit for bit.
    let dec = WordLmDecoder::build(hyper());
    for session in 0..SESSIONS {
        let mut exec = Executor::new(
            Arc::clone(&dec.graph),
            StashPlan::stash_all(),
            DeviceMemory::with_overhead_model(4 << 30, 0, 0.0),
        );
        dec.bind_params(&mut exec, SEED).unwrap();
        let mut state = LmState::zero(dec.hyper.layers, dec.hyper.hidden);
        for (round, expected) in served[session as usize].iter().enumerate() {
            let (logits, next) = dec
                .infer_step(
                    &mut exec,
                    &[token(session, round)],
                    std::slice::from_ref(&state),
                )
                .unwrap();
            state = next.into_iter().next().unwrap();
            assert_eq!(
                expected, &logits[0],
                "session {session} round {round}: re-warmed logits must be \
                 bit-identical to an uninterrupted session"
            );
        }
    }
}
