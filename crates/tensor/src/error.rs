//! Error type for tensor operations.

use crate::shape::Shape;
use std::fmt;

/// Errors produced by tensor construction and kernels.
///
/// All fallible entry points in this crate return
/// [`Result<T, TensorError>`](crate::Result); kernels that cannot fail (e.g.
/// element-wise maps over an owned tensor) are infallible by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the provided
    /// buffer length.
    LengthMismatch {
        /// Shape the caller asked for.
        shape: Shape,
        /// Length of the buffer that was supplied.
        len: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// Shape of the tensor being indexed.
        shape: Shape,
    },
    /// A matrix-product dimension did not line up.
    GemmDimension {
        /// `(rows, cols)` of the left operand after any transpose.
        a: (usize, usize),
        /// `(rows, cols)` of the right operand after any transpose.
        b: (usize, usize),
        /// `(rows, cols)` of the output.
        c: (usize, usize),
    },
    /// The requested axis does not exist for the tensor's rank.
    InvalidAxis {
        /// Axis requested.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A reshape asked for a different number of elements.
    ReshapeMismatch {
        /// Original shape.
        from: Shape,
        /// Requested shape.
        to: Shape,
    },
    /// An operation received an empty input where at least one element is
    /// required (e.g. `argmax` over zero elements).
    Empty {
        /// The operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { shape, len } => write!(
                f,
                "buffer of length {len} cannot back shape {shape} ({} elements)",
                shape.num_elements()
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in `{op}`: {left} vs {right}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape}")
            }
            TensorError::GemmDimension { a, b, c } => write!(
                f,
                "GEMM dimensions do not agree: a={}x{}, b={}x{}, c={}x{}",
                a.0, a.1, b.0, b.1, c.0, c.1
            ),
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is invalid for rank-{rank} tensor")
            }
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape {from} ({} elements) into {to} ({} elements)",
                from.num_elements(),
                to.num_elements()
            ),
            TensorError::Empty { op } => write!(f, "`{op}` requires a non-empty input"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            left: Shape::d2(2, 3),
            right: Shape::d2(3, 2),
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
