//! General matrix multiply (GEMM) kernels.
//!
//! The paper's data layout optimization compares two formulations of the
//! fully-connected layer `Y = XWᵀ + b`:
//!
//! * the *row-major* form `Y = XWᵀ` (MXNet/cuDNN default), and
//! * the *column-major* form `Yᵀ = WXᵀ`,
//!
//! which perform identical arithmetic but stream memory differently. With
//! layout-explicit [`MatView`]s both are a single [`gemm`] call, so the exact
//! numeric kernel is shared and only the access pattern differs — the same
//! property the paper exploits on GPUs.

use crate::error::TensorError;
use crate::layout::MatrixLayout;
use crate::matrix::{MatView, MatViewMut};
use crate::Result;

/// Whether a GEMM operand is used transposed.
///
/// Transposition of a [`MatView`] is free (see [`MatView::t`]); this enum
/// exists for call sites that want to express BLAS-style signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the transposed operand.
    Yes,
}

impl Transpose {
    /// Applies this flag to a view.
    pub fn apply<'a>(self, m: MatView<'a>) -> MatView<'a> {
        match self {
            Transpose::No => m,
            Transpose::Yes => m.t(),
        }
    }
}

fn strides(layout: MatrixLayout, rows: usize, cols: usize) -> (usize, usize) {
    (layout.row_stride(rows, cols), layout.col_stride(rows, cols))
}

/// `C = alpha * A * B + beta * C`.
///
/// Dimensions must satisfy `A: [m x k]`, `B: [k x n]`, `C: [m x n]` (after
/// any caller-side transposition via [`MatView::t`]).
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up.
///
/// # Example
///
/// ```
/// use echo_tensor::{gemm, MatView, MatViewMut, MatrixLayout};
///
/// let a = [1., 2., 3., 4.]; // 2x2 row-major
/// let b = [5., 6., 7., 8.];
/// let mut c = [0.0f32; 4];
/// gemm(
///     1.0,
///     MatView::new(&a, 2, 2, MatrixLayout::RowMajor),
///     MatView::new(&b, 2, 2, MatrixLayout::RowMajor),
///     0.0,
///     &mut MatViewMut::new(&mut c, 2, 2, MatrixLayout::RowMajor),
/// )?;
/// assert_eq!(c, [19., 22., 43., 50.]);
/// # Ok::<(), echo_tensor::TensorError>(())
/// ```
pub fn gemm(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
) -> Result<()> {
    check_dims(&a, &b, c)?;
    c.scale(beta);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (ars, acs) = strides(a.layout(), m, k);
    let (brs, bcs) = strides(b.layout(), k, n);
    let (crs, ccs) = strides(c.layout(), m, n);
    let ad = a.data();
    let bd = b.data();

    let cd = c.data_mut();

    // i-k-j loop order with a scalar hoisted out of the innermost loop; this
    // streams B and C along their column strides, which is contiguous in the
    // common row-major case. There is deliberately no `aval == 0` skip: it
    // would drop `0 × NaN` / `0 × ∞` products, producing finite outputs
    // where IEEE propagation yields NaN (and it would also break the
    // bit-exactness contract between this kernel and the packed backend).
    for i in 0..m {
        for p in 0..k {
            let aval = alpha * ad[i * ars + p * acs];
            let brow = p * brs;
            let crow = i * crs;
            for j in 0..n {
                cd[crow + j * ccs] += aval * bd[brow + j * bcs];
            }
        }
    }
    Ok(())
}

pub(crate) fn check_dims(a: &MatView<'_>, b: &MatView<'_>, c: &MatViewMut<'_>) -> Result<()> {
    if a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols() {
        return Err(TensorError::GemmDimension {
            a: (a.rows(), a.cols()),
            b: (b.rows(), b.cols()),
            c: (c.rows(), c.cols()),
        });
    }
    Ok(())
}

/// Reference triple-loop GEMM used to validate the optimized kernels.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up.
pub fn gemm_reference(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
) -> Result<()> {
    check_dims(&a, &b, c)?;
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for p in 0..a.cols() {
                acc += f64::from(a.get(i, p)) * f64::from(b.get(p, j));
            }
            let v = alpha * acc as f32 + beta * c.get(i, j);
            c.set(i, j, v);
        }
    }
    Ok(())
}

/// Cache-blocked GEMM (`C = alpha*A*B + beta*C`) with `MC x KC x NC` tiles.
///
/// This is the kernel the CPU-side benchmarks use; the tile sizes are chosen
/// to keep the working set within a typical L2 slice.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up.
pub fn gemm_blocked(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
) -> Result<()> {
    const MC: usize = 64;
    const KC: usize = 128;
    const NC: usize = 128;
    check_dims(&a, &b, c)?;
    c.scale(beta);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (ars, acs) = strides(a.layout(), m, k);
    let (brs, bcs) = strides(b.layout(), k, n);
    let ad = a.data();
    let bd = b.data();

    let rows = c.rows();
    let cols = c.cols();
    let (crs, ccs) = strides(c.layout(), rows, cols);
    let cd = c.data_mut();

    for i0 in (0..m).step_by(MC) {
        let i1 = (i0 + MC).min(m);
        for p0 in (0..k).step_by(KC) {
            let p1 = (p0 + KC).min(k);
            for j0 in (0..n).step_by(NC) {
                let j1 = (j0 + NC).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        // No zero-skip: see `gemm` for the IEEE rationale.
                        let aval = alpha * ad[i * ars + p * acs];
                        let brow = p * brs;
                        let crow = i * crs;
                        for j in j0..j1 {
                            cd[crow + j * ccs] += aval * bd[brow + j * bcs];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Multi-threaded blocked GEMM: `C = alpha*A*B + beta*C`, splitting the
/// output rows across at most `threads` bands run on the shared
/// [worker pool](crate::pool) (no per-call thread spawning).
///
/// Requires a row-major `C` so each band owns a contiguous slice. Each
/// output element is produced by exactly one band with the same serial
/// inner loop as [`gemm_blocked`]'s k-panel order, so the result is
/// bit-identical for every `threads` value.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up, or when `C` is not row-major.
pub fn gemm_parallel(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
    threads: usize,
) -> Result<()> {
    check_dims(&a, &b, c)?;
    if c.layout() != MatrixLayout::RowMajor {
        return Err(TensorError::GemmDimension {
            a: (a.rows(), a.cols()),
            b: (b.rows(), b.cols()),
            c: (c.rows(), c.cols()),
        });
    }
    let threads = threads.max(1);
    let m = a.rows();
    let n = b.cols();
    // Degenerate shapes: an empty output means nothing to band (and
    // `chunks_mut(rows_per * n)` would panic on a zero chunk size when
    // n == 0); k == 0 still needs the beta-scale, which gemm_blocked does.
    if m == 0 || n == 0 || threads == 1 || m < 2 * threads {
        return gemm_blocked(alpha, a, b, beta, c);
    }
    let rows_per = m.div_ceil(threads);
    let bands = m.div_ceil(rows_per);
    let cbase = crate::pool::SendPtr(c.data_mut().as_mut_ptr());
    let cbase = &cbase;
    crate::pool::global().run_indexed(bands, &move |band_idx| {
        let row0 = band_idx * rows_per;
        let band_rows = rows_per.min(m - row0);
        // SAFETY: bands partition C's rows disjointly, so each index
        // writes a non-overlapping `band_rows × n` slice.
        let band = unsafe { std::slice::from_raw_parts_mut(cbase.0.add(row0 * n), band_rows * n) };
        // Re-view A's band; A may be any layout, so carve by rows
        // logically rather than physically.
        let a_band = BandView {
            inner: a,
            row0,
            rows: band_rows,
        };
        let mut c_band = MatViewMut::new(band, band_rows, n, MatrixLayout::RowMajor);
        band_gemm(alpha, &a_band, b, beta, &mut c_band);
    });
    Ok(())
}

/// A logical row-band of a matrix view.
struct BandView<'a> {
    inner: MatView<'a>,
    row0: usize,
    rows: usize,
}

/// Blocked kernel over a row band (serial; called per worker).
fn band_gemm(alpha: f32, a: &BandView<'_>, b: MatView<'_>, beta: f32, c: &mut MatViewMut<'_>) {
    c.scale(beta);
    let k = a.inner.cols();
    let n = b.cols();
    let (brs, bcs) = strides(b.layout(), k, n);
    let bd = b.data();
    let cd = c.data_mut();
    const KC: usize = 128;
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        for i in 0..a.rows {
            for p in p0..p1 {
                // No zero-skip: see `gemm` for the IEEE rationale.
                let aval = alpha * a.inner.get(a.row0 + i, p);
                let brow = p * brs;
                let crow = i * n;
                for j in 0..n {
                    cd[crow + j] += aval * bd[brow + j * bcs];
                }
            }
        }
    }
}

/// The paper's row-major fully-connected product: `Y = X · Wᵀ`.
///
/// `x` is `[B x H]`, `w` is `[O x H]` (both row-major), and `y` is the
/// `[B x O]` row-major output. This mirrors MXNet's `FullyConnected`.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the shapes do not agree.
pub fn fc_row_major(x: MatView<'_>, w: MatView<'_>, y: &mut MatViewMut<'_>) -> Result<()> {
    gemm(1.0, x, w.t(), 0.0, y)
}

/// The paper's column-major fully-connected product: `Yᵀ = W · Xᵀ`.
///
/// `x` is the `[B x H]` input viewed column-major (i.e. physically `[H x B]`,
/// as produced by the `[T, H, B]` sequence layout), `w` is `[O x H]`
/// row-major, and `yt` is the `[O x B]` output whose transpose is `Y`.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the shapes do not agree.
pub fn fc_col_major(w: MatView<'_>, x: MatView<'_>, yt: &mut MatViewMut<'_>) -> Result<()> {
    gemm(1.0, w, x.t(), 0.0, yt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MatrixLayout::{ColMajor, RowMajor};

    fn rm<'a>(d: &'a [f32], r: usize, c: usize) -> MatView<'a> {
        MatView::new(d, r, c, RowMajor)
    }

    #[test]
    fn gemm_matches_reference_all_layout_combos() {
        let (m, k, n) = (3, 4, 5);
        let a_data: Vec<f32> = (0..m * k).map(|v| v as f32 * 0.5 - 2.0).collect();
        let b_data: Vec<f32> = (0..k * n).map(|v| (v as f32).sin()).collect();
        for la in [RowMajor, ColMajor] {
            for lb in [RowMajor, ColMajor] {
                for lc in [RowMajor, ColMajor] {
                    let a = MatView::new(&a_data, m, k, la);
                    let b = MatView::new(&b_data, k, n, lb);
                    let mut c1 = vec![0.5f32; m * n];
                    let mut c2 = c1.clone();
                    gemm(2.0, a, b, 0.5, &mut MatViewMut::new(&mut c1, m, n, lc)).unwrap();
                    gemm_reference(2.0, a, b, 0.5, &mut MatViewMut::new(&mut c2, m, n, lc))
                        .unwrap();
                    for (x, y) in c1.iter().zip(&c2) {
                        assert!((x - y).abs() < 1e-4, "layouts {la:?} {lb:?} {lc:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_matches_reference() {
        let (m, k, n) = (70, 130, 140); // straddles the tile boundaries
        let a_data: Vec<f32> = (0..m * k).map(|v| ((v * 37) % 11) as f32 - 5.0).collect();
        let b_data: Vec<f32> = (0..k * n).map(|v| ((v * 13) % 7) as f32 - 3.0).collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_blocked(
            1.0,
            rm(&a_data, m, k),
            rm(&b_data, k, n),
            0.0,
            &mut MatViewMut::new(&mut c1, m, n, RowMajor),
        )
        .unwrap();
        gemm_reference(
            1.0,
            rm(&a_data, m, k),
            rm(&b_data, k, n),
            0.0,
            &mut MatViewMut::new(&mut c2, m, n, RowMajor),
        )
        .unwrap();
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let (m, k, n) = (67, 45, 53);
        let a_data: Vec<f32> = (0..m * k).map(|v| ((v * 31) % 13) as f32 - 6.0).collect();
        let b_data: Vec<f32> = (0..k * n).map(|v| ((v * 17) % 9) as f32 - 4.0).collect();
        for threads in [1usize, 2, 4] {
            for lb in [RowMajor, ColMajor] {
                let mut c1 = vec![0.25f32; m * n];
                let mut c2 = c1.clone();
                gemm_parallel(
                    1.5,
                    rm(&a_data, m, k),
                    MatView::new(&b_data, k, n, lb),
                    0.5,
                    &mut MatViewMut::new(&mut c1, m, n, RowMajor),
                    threads,
                )
                .unwrap();
                gemm_reference(
                    1.5,
                    rm(&a_data, m, k),
                    MatView::new(&b_data, k, n, lb),
                    0.5,
                    &mut MatViewMut::new(&mut c2, m, n, RowMajor),
                )
                .unwrap();
                for (x, y) in c1.iter().zip(&c2) {
                    assert!((x - y).abs() < 1e-2, "threads {threads} layout {lb:?}");
                }
            }
        }
    }

    #[test]
    fn zero_times_nan_propagates_nan() {
        // A zero in A must not short-circuit past a NaN (or ∞) in B:
        // IEEE 754 says 0 × NaN = NaN and 0 × ∞ = NaN.
        let a_data = vec![0.0f32, 0.0, 1.0, 2.0]; // row 0 is all zeros
        let b_data = vec![f32::NAN, 1.0, f32::INFINITY, 2.0];
        for kernel in [gemm, gemm_blocked] {
            let mut c = vec![0.0f32; 4];
            kernel(
                1.0,
                rm(&a_data, 2, 2),
                rm(&b_data, 2, 2),
                0.0,
                &mut MatViewMut::new(&mut c, 2, 2, RowMajor),
            )
            .unwrap();
            // Column 0 holds the specials: 0·NaN + 0·∞ → NaN, not 0.
            assert!(c[0].is_nan(), "0·NaN + 0·∞ must be NaN");
            assert!(c[2].is_nan(), "1·NaN + 2·∞ must be NaN");
            // Column 1 is finite everywhere.
            assert_eq!(c[1], 0.0);
            assert_eq!(c[3], 1.0 * 1.0 + 2.0 * 2.0);
        }
        // band_gemm (via gemm_parallel with banding forced) as well.
        let a_big = vec![0.0f32; 8 * 2];
        let b_nan = vec![f32::NAN, 1.0, 1.0, 1.0];
        let mut c = vec![0.0f32; 8 * 2];
        gemm_parallel(
            1.0,
            rm(&a_big, 8, 2),
            rm(&b_nan, 2, 2),
            0.0,
            &mut MatViewMut::new(&mut c, 8, 2, RowMajor),
            4,
        )
        .unwrap();
        assert!(c[0].is_nan(), "banded kernel must propagate NaN too");
    }

    #[test]
    fn parallel_handles_degenerate_shapes() {
        // n == 0 used to divide by zero when computing band rows.
        let a_data = vec![1.0f32; 8];
        let b_data: Vec<f32> = vec![];
        let mut c: Vec<f32> = vec![];
        gemm_parallel(
            1.0,
            rm(&a_data, 8, 1),
            rm(&b_data, 1, 0),
            0.0,
            &mut MatViewMut::new(&mut c, 8, 0, RowMajor),
            4,
        )
        .unwrap();

        // m == 0: empty output, nothing to do.
        let b2 = vec![1.0f32; 6];
        let mut c2: Vec<f32> = vec![];
        gemm_parallel(
            1.0,
            rm(&[], 0, 2),
            rm(&b2, 2, 3),
            0.0,
            &mut MatViewMut::new(&mut c2, 0, 3, RowMajor),
            4,
        )
        .unwrap();

        // k == 0: C = beta * C exactly (no products contribute).
        let mut c3 = vec![2.0f32; 6];
        gemm_parallel(
            1.0,
            rm(&[], 2, 0),
            rm(&[], 0, 3),
            0.5,
            &mut MatViewMut::new(&mut c3, 2, 3, RowMajor),
            4,
        )
        .unwrap();
        assert_eq!(c3, vec![1.0f32; 6]);

        // m smaller than the band count must not mis-band.
        let a4 = vec![1.0f32, 2.0, 3.0, 4.0];
        let b4 = vec![1.0f32, 0.0, 0.0, 1.0];
        let mut c4 = vec![0.0f32; 4];
        gemm_parallel(
            1.0,
            rm(&a4, 2, 2),
            rm(&b4, 2, 2),
            0.0,
            &mut MatViewMut::new(&mut c4, 2, 2, RowMajor),
            8,
        )
        .unwrap();
        assert_eq!(c4, a4);
    }

    #[test]
    fn parallel_rejects_col_major_output() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        let err = gemm_parallel(
            1.0,
            rm(&a, 2, 2),
            rm(&b, 2, 2),
            0.0,
            &mut MatViewMut::new(&mut c, 2, 2, ColMajor),
            2,
        );
        assert!(err.is_err());
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a_data = vec![0.0f32; 6];
        let b_data = vec![0.0f32; 6];
        let mut c_data = vec![0.0f32; 4];
        let err = gemm(
            1.0,
            rm(&a_data, 2, 3),
            rm(&b_data, 2, 3),
            0.0,
            &mut MatViewMut::new(&mut c_data, 2, 2, RowMajor),
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::GemmDimension { .. }));
    }

    #[test]
    fn fc_row_and_col_major_agree() {
        // X: [B x H] = [2 x 3], W: [O x H] = [4 x 3].
        let x_rm = vec![1., 2., 3., 4., 5., 6.];
        let w = vec![
            1., 0., 0., //
            0., 1., 0., //
            0., 0., 1., //
            1., 1., 1.,
        ];
        let mut y = vec![0.0f32; 8];
        fc_row_major(
            rm(&x_rm, 2, 3),
            rm(&w, 4, 3),
            &mut MatViewMut::new(&mut y, 2, 4, RowMajor),
        )
        .unwrap();
        assert_eq!(y, vec![1., 2., 3., 6., 4., 5., 6., 15.]);

        // Same X stored column-major (physically [H x B]).
        let x_cm = vec![1., 4., 2., 5., 3., 6.];
        let mut yt = vec![0.0f32; 8];
        fc_col_major(
            rm(&w, 4, 3),
            MatView::new(&x_cm, 2, 3, ColMajor),
            &mut MatViewMut::new(&mut yt, 4, 2, RowMajor),
        )
        .unwrap();
        // yt is [O x B]; its transpose must equal y.
        let yt_view = MatView::new(&yt, 4, 2, RowMajor);
        let y_view = MatView::new(&y, 2, 4, RowMajor);
        for b in 0..2 {
            for o in 0..4 {
                assert_eq!(yt_view.get(o, b), y_view.get(b, o));
            }
        }
    }

    #[test]
    fn transpose_flag_applies() {
        let d = vec![1., 2., 3., 4., 5., 6.];
        let v = rm(&d, 2, 3);
        let t = Transpose::Yes.apply(v);
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(Transpose::No.apply(v).rows(), 2);
    }
}
