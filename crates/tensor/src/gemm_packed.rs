//! Packed, register-blocked GEMM — the training hot path's fast kernel.
//!
//! The naive i-k-j [`gemm`](crate::gemm::gemm) loads and stores every
//! `C[i, j]` once per `p` iteration: the innermost statement is
//! `c[j] += aval * b[j]`, three memory operations per FLOP pair. This
//! module uses the classic GotoBLAS decomposition instead:
//!
//! 1. the k dimension is cut into `KC`-deep panels;
//! 2. each panel of `B` is **packed** into contiguous `NR`-column strips
//!    (`kc × NR` values each, zero-padded at the right edge) and each
//!    `MC`-row block of `A` into `MR`-row strips with `alpha`
//!    pre-multiplied;
//! 3. an unrolled **micro-kernel** computes an `MR × NR` tile of `C`
//!    entirely in register accumulators, touching `C` memory only to load
//!    the tile once per panel and store it once per panel.
//!
//! `MR = 4, NR = 8` keeps the 4×2 accumulator vectors plus the `A`/`B`
//! operands within the 16 XMM registers of the baseline x86-64 target.
//! Pack buffers are leased from a thread-local
//! [`ScratchArena`](echo_memory::ScratchArena), so steady-state training
//! performs **zero** heap allocation per GEMM call.
//!
//! # Bit-exactness
//!
//! Every kernel in this crate computes each output element with the same
//! floating-point operation sequence: `c ← beta·c`, then
//! `c ← c + (alpha·a[i,p])·b[p,j]` for `p` strictly ascending. The
//! micro-kernel preserves it — the accumulator is *loaded from* `C`, so
//! storing the tile between k-panels round-trips the exact f32 value —
//! and row-band parallelism assigns each output element to exactly one
//! band. Naive, blocked, packed, and packed-parallel at any `ways` are
//! therefore **bit-identical**, which is what lets the dispatch layer
//! pick a backend per problem size without perturbing training.

use crate::error::TensorError;
use crate::layout::MatrixLayout;
use crate::matrix::{MatView, MatViewMut};
use crate::pool::{self, band_count};
use crate::Result;
use echo_memory::ScratchArena;

/// Rows per A strip / micro-tile.
pub const MR: usize = 4;
/// Columns per B strip / micro-tile.
pub const NR: usize = 8;
/// Depth of one packed k-panel.
const KC: usize = 256;
/// Rows of A packed per block (bounds the A pack buffer at `MC × KC`).
const MC: usize = 128;

thread_local! {
    /// Per-thread pack-buffer arena: each pool worker (and the caller)
    /// reuses its own high-water buffers for the life of the process.
    static PACK_ARENA: ScratchArena = const { ScratchArena::new() };
}

/// Statistics of the calling thread's pack arena (for tests/benchmarks).
pub fn pack_arena_stats() -> (u64, u64, usize) {
    PACK_ARENA.with(|a| (a.lease_count(), a.reuse_hits(), a.high_water_elems()))
}

/// Serial packed GEMM: `C = alpha*A*B + beta*C` with a row-major `C`.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up or `C` is not row-major.
pub fn gemm_packed(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
) -> Result<()> {
    gemm_packed_parallel(alpha, a, b, beta, c, 1)
}

/// Packed GEMM over at most `ways` row bands run on the shared
/// [worker pool](crate::pool).
///
/// `B` is packed once by the caller and shared read-only by all bands;
/// each band packs its own rows of `A` into its thread-local arena. Bands
/// partition **output rows only**, so the per-element accumulation order
/// is independent of `ways` (see the module docs).
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up or `C` is not row-major.
pub fn gemm_packed_parallel(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
    ways: usize,
) -> Result<()> {
    crate::gemm::check_dims(&a, &b, c)?;
    if c.layout() != MatrixLayout::RowMajor {
        return Err(TensorError::GemmDimension {
            a: (a.rows(), a.cols()),
            b: (b.rows(), b.cols()),
            c: (c.rows(), c.cols()),
        });
    }
    c.scale(beta);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || n == 0 || k == 0 {
        return Ok(()); // beta-scale already applied; no products contribute
    }

    let n_strips = n.div_ceil(NR);
    // Panel starting at p0 lives at offset p0 * n_strips * NR: panels are
    // stored back to back and each holds kc * n_strips * NR values.
    PACK_ARENA.with(|arena| {
        arena.with_f32(k * n_strips * NR, |bpack| {
            let mut p0 = 0;
            while p0 < k {
                let kc = KC.min(k - p0);
                let panel = &mut bpack[p0 * n_strips * NR..][..kc * n_strips * NR];
                pack_b_panel(b, p0, kc, n, n_strips, panel);
                p0 += kc;
            }

            let bands = band_count(m, MR, ways);
            let cd = c.data_mut();
            if bands <= 1 {
                packed_band(alpha, a, 0, m, bpack, k, n, n_strips, cd);
                return;
            }
            let rows_per = m.div_ceil(bands);
            let bpack: &[f32] = bpack;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = cd
                .chunks_mut(rows_per * n)
                .enumerate()
                .map(|(band_idx, band)| {
                    let row0 = band_idx * rows_per;
                    let band_rows = band.len() / n;
                    Box::new(move || {
                        packed_band(alpha, a, row0, band_rows, bpack, k, n, n_strips, band);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool::global().run(jobs);
        });
    });
    Ok(())
}

/// Computes rows `row0 .. row0 + rows` of `C` (a row-major `rows × n`
/// slice) against the fully packed `B`. `alpha` is folded into the A pack.
#[allow(clippy::too_many_arguments)]
fn packed_band(
    alpha: f32,
    a: MatView<'_>,
    row0: usize,
    rows: usize,
    bpack: &[f32],
    k: usize,
    n: usize,
    n_strips: usize,
    cband: &mut [f32],
) {
    PACK_ARENA.with(|arena| {
        let mut p0 = 0;
        while p0 < k {
            let kc = KC.min(k - p0);
            let bpanel = &bpack[p0 * n_strips * NR..][..kc * n_strips * NR];
            let mut i0 = 0;
            while i0 < rows {
                let ic = MC.min(rows - i0);
                let i_strips = ic.div_ceil(MR);
                arena.with_f32(i_strips * MR * kc, |apack| {
                    pack_a_block(alpha, a, row0 + i0, ic, p0, kc, apack);
                    for js in 0..n_strips {
                        let j0 = js * NR;
                        let nr = NR.min(n - j0);
                        let bstrip = &bpanel[js * kc * NR..][..kc * NR];
                        for is in 0..i_strips {
                            let ii = is * MR;
                            let mr = MR.min(ic - ii);
                            let astrip = &apack[is * kc * MR..][..kc * MR];
                            let coff = (i0 + ii) * n + j0;
                            if mr == MR && nr == NR {
                                micro_full(kc, astrip, bstrip, &mut cband[coff..], n);
                            } else {
                                micro_edge(kc, astrip, bstrip, cband, coff, n, mr, nr);
                            }
                        }
                    }
                });
                i0 += ic;
            }
            p0 += kc;
        }
    });
}

/// Packs the `kc`-deep panel of `B` starting at row `p0` into `NR`-column
/// strips: strip `js` holds `kc × NR` values, row-of-panel major, with
/// zero padding past column `n`.
fn pack_b_panel(b: MatView<'_>, p0: usize, kc: usize, n: usize, n_strips: usize, out: &mut [f32]) {
    let (brs, bcs) = (
        b.layout().row_stride(b.rows(), b.cols()),
        b.layout().col_stride(b.rows(), b.cols()),
    );
    let bd = b.data();
    for js in 0..n_strips {
        let j0 = js * NR;
        let nr = NR.min(n - j0);
        let strip = &mut out[js * kc * NR..][..kc * NR];
        for p in 0..kc {
            let brow = (p0 + p) * brs;
            let dst = &mut strip[p * NR..p * NR + NR];
            for (j, d) in dst.iter_mut().enumerate() {
                *d = if j < nr {
                    bd[brow + (j0 + j) * bcs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `ic` rows of `A` starting at `row0` (k range `p0 .. p0 + kc`)
/// into `MR`-row strips with `alpha` pre-multiplied (reproducing the naive
/// kernel's `aval = alpha * a[i, p]` rounding exactly); rows past the edge
/// are zero.
fn pack_a_block(
    alpha: f32,
    a: MatView<'_>,
    row0: usize,
    ic: usize,
    p0: usize,
    kc: usize,
    out: &mut [f32],
) {
    let (ars, acs) = (
        a.layout().row_stride(a.rows(), a.cols()),
        a.layout().col_stride(a.rows(), a.cols()),
    );
    let ad = a.data();
    let i_strips = ic.div_ceil(MR);
    for is in 0..i_strips {
        let ii = is * MR;
        let mr = MR.min(ic - ii);
        let strip = &mut out[is * kc * MR..][..kc * MR];
        for p in 0..kc {
            let acol = (p0 + p) * acs;
            let dst = &mut strip[p * MR..p * MR + MR];
            for (i, d) in dst.iter_mut().enumerate() {
                *d = if i < mr {
                    alpha * ad[(row0 + ii + i) * ars + acol]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Full `MR × NR` micro-kernel: loads the C tile into register
/// accumulators, adds `kc` rank-1 updates in ascending `p`, stores back.
/// `c` points at the tile's top-left element; `ldc` is C's row stride.
#[inline(always)]
fn micro_full(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[i * ldc..i * ldc + NR]);
    }
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = a[i];
            for (j, acc_ij) in row.iter_mut().enumerate() {
                *acc_ij += ai * b[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + NR].copy_from_slice(row);
    }
}

/// Edge micro-kernel for partial tiles (`mr ≤ MR`, `nr ≤ NR`): valid
/// lanes are loaded from C and stored back; padded lanes accumulate only
/// products of physical zeros and are discarded.
#[allow(clippy::too_many_arguments)]
fn micro_edge(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    coff: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&c[coff + i * ldc..coff + i * ldc + nr]);
    }
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = a[i];
            for (j, acc_ij) in row.iter_mut().enumerate() {
                *acc_ij += ai * b[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr) {
        c[coff + i * ldc..coff + i * ldc + nr].copy_from_slice(&row[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, gemm_blocked};
    use crate::layout::MatrixLayout::{ColMajor, RowMajor};

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|v| {
                (((v as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) % 2048) as f32
                    / 256.0
                    - 4.0
            })
            .collect()
    }

    #[test]
    fn packed_is_bit_identical_to_naive() {
        // Shapes straddle MR/NR/KC edges.
        for (m, k, n) in [
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 9),
            (37, 300, 65),
            (64, 257, 33),
        ] {
            for la in [RowMajor, ColMajor] {
                for lb in [RowMajor, ColMajor] {
                    let a_data = fill(m * k, 1);
                    let b_data = fill(k * n, 2);
                    let a = MatView::new(&a_data, m, k, la);
                    let b = MatView::new(&b_data, k, n, lb);
                    let mut c1 = fill(m * n, 3);
                    let mut c2 = c1.clone();
                    gemm(
                        1.25,
                        a,
                        b,
                        0.5,
                        &mut MatViewMut::new(&mut c1, m, n, RowMajor),
                    )
                    .unwrap();
                    gemm_packed(
                        1.25,
                        a,
                        b,
                        0.5,
                        &mut MatViewMut::new(&mut c2, m, n, RowMajor),
                    )
                    .unwrap();
                    assert_eq!(
                        c1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        c2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{m}x{k}x{n} {la:?} {lb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_parallel_bit_identical_for_every_way_count() {
        let (m, k, n) = (61, 130, 47);
        let a_data = fill(m * k, 7);
        let b_data = fill(k * n, 11);
        let mut reference = fill(m * n, 13);
        let init = reference.clone();
        gemm_blocked(
            1.0,
            MatView::new(&a_data, m, k, RowMajor),
            MatView::new(&b_data, k, n, RowMajor),
            1.0,
            &mut MatViewMut::new(&mut reference, m, n, RowMajor),
        )
        .unwrap();
        for ways in [1usize, 2, 4, 8] {
            let mut c = init.clone();
            gemm_packed_parallel(
                1.0,
                MatView::new(&a_data, m, k, RowMajor),
                MatView::new(&b_data, k, n, RowMajor),
                1.0,
                &mut MatViewMut::new(&mut c, m, n, RowMajor),
                ways,
            )
            .unwrap();
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "ways = {ways}"
            );
        }
    }

    #[test]
    fn packed_propagates_nan_from_b() {
        let a_data = vec![0.0f32; 4 * 2];
        let mut b_data = vec![1.0f32; 2 * 8];
        b_data[0] = f32::NAN;
        let mut c = vec![0.0f32; 4 * 8];
        gemm_packed(
            1.0,
            MatView::new(&a_data, 4, 2, RowMajor),
            MatView::new(&b_data, 2, 8, RowMajor),
            0.0,
            &mut MatViewMut::new(&mut c, 4, 8, RowMajor),
        )
        .unwrap();
        assert!(c[0].is_nan(), "0 × NaN must propagate through the pack");
    }

    #[test]
    fn packed_handles_degenerate_shapes() {
        let mut c = vec![3.0f32; 6];
        gemm_packed(
            1.0,
            MatView::new(&[], 2, 0, RowMajor),
            MatView::new(&[], 0, 3, RowMajor),
            0.5,
            &mut MatViewMut::new(&mut c, 2, 3, RowMajor),
        )
        .unwrap();
        assert_eq!(c, vec![1.5f32; 6]);

        let mut empty: Vec<f32> = vec![];
        gemm_packed(
            1.0,
            MatView::new(&[1.0, 2.0], 2, 1, RowMajor),
            MatView::new(&[], 1, 0, RowMajor),
            0.0,
            &mut MatViewMut::new(&mut empty, 2, 0, RowMajor),
        )
        .unwrap();
    }

    #[test]
    fn pack_buffers_are_reused_across_calls() {
        let (m, k, n) = (16, 32, 16);
        let a_data = fill(m * k, 1);
        let b_data = fill(k * n, 2);
        let before = pack_arena_stats().0;
        for _ in 0..8 {
            let mut c = vec![0.0f32; m * n];
            gemm_packed(
                1.0,
                MatView::new(&a_data, m, k, RowMajor),
                MatView::new(&b_data, k, n, RowMajor),
                0.0,
                &mut MatViewMut::new(&mut c, m, n, RowMajor),
            )
            .unwrap();
        }
        let (leases, hits, _) = pack_arena_stats();
        let new_leases = leases - before;
        assert_eq!(new_leases, 16, "one B pack + one A pack per call");
        // Every lease after the first pair reuses a retained buffer.
        assert!(hits >= new_leases - 2, "leases {new_leases}, hits {hits}");
    }

    #[test]
    fn packed_rejects_col_major_output() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        assert!(gemm_packed(
            1.0,
            MatView::new(&a, 2, 2, RowMajor),
            MatView::new(&b, 2, 2, RowMajor),
            0.0,
            &mut MatViewMut::new(&mut c, 2, 2, ColMajor),
        )
        .is_err());
    }
}
