//! Packed, register-blocked GEMM — the training hot path's fast kernel.
//!
//! The naive i-k-j [`gemm`](crate::gemm::gemm) loads and stores every
//! `C[i, j]` once per `p` iteration: the innermost statement is
//! `c[j] += aval * b[j]`, three memory operations per FLOP pair. This
//! module uses the classic GotoBLAS decomposition instead:
//!
//! 1. the k dimension is cut into `KC`-deep panels;
//! 2. each panel of `B` is **packed** into contiguous `NR`-column strips
//!    (`kc × NR` values each, zero-padded at the right edge) and each
//!    `MC`-row block of `A` into `MR`-row strips with `alpha`
//!    pre-multiplied;
//! 3. an unrolled **micro-kernel** computes an `MR × NR` tile of `C`
//!    entirely in register accumulators, touching `C` memory only to load
//!    the tile once per panel and store it once per panel.
//!
//! `MR = 4, NR = 8` maps one C row of the tile onto a single 8-lane f32
//! vector register (`ymm` on AVX2; a `float32x4` pair on NEON), with the
//! portable scalar kernel computing the identical `[[f32; NR]; MR]`
//! accumulator block. The micro-kernel variant is chosen once per process
//! by [`active_micro_kernel`] — runtime feature detection, overridable via
//! `ECHO_GEMM_KERNEL` or [`set_micro_kernel`] — and `KC`/`MC` are runtime
//! tile sizes ([`gemm_tiles`], autotuned by the policy layer's one-shot
//! microbench). Pack buffers are leased from a thread-local
//! [`ScratchArena`](echo_memory::ScratchArena), so steady-state training
//! performs **zero** heap allocation per GEMM call.
//!
//! # Bit-exactness
//!
//! Every kernel in this crate computes each output element with the same
//! floating-point operation sequence: `c ← beta·c`, then
//! `c ← c + (alpha·a[i,p])·b[p,j]` for `p` strictly ascending. The
//! micro-kernel preserves it — the accumulator is *loaded from* `C`, so
//! storing the tile between k-panels round-trips the exact f32 value —
//! and row-band parallelism assigns each output element to exactly one
//! band. The SIMD variants preserve it too: each vector lane `j` performs
//! the same scalar `acc += a_i * b_j` chain (a separate IEEE multiply and
//! add per step — **never** a fused multiply-add, which would round once
//! instead of twice), so scalar, AVX2 and NEON kernels are bit-identical,
//! as are all tile sizes (the C tile round-trips exactly through memory
//! at every `KC`/`MC` boundary). Naive, blocked, packed, and
//! packed-parallel at any `ways` are therefore **bit-identical**, which
//! is what lets the dispatch layer pick a backend per problem size
//! without perturbing training.

use crate::error::TensorError;
use crate::layout::MatrixLayout;
use crate::matrix::{MatView, MatViewMut};
use crate::pool::{self, band_count, SendPtr};
use crate::Result;
use echo_memory::ScratchArena;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per A strip / micro-tile.
pub const MR: usize = 4;
/// Columns per B strip / micro-tile.
pub const NR: usize = 8;
/// Default depth of one packed k-panel (see [`gemm_tiles`]).
pub const DEFAULT_KC: usize = 256;
/// Default rows of A packed per block (bounds the A pack buffer at
/// `MC × KC`; see [`gemm_tiles`]).
pub const DEFAULT_MC: usize = 128;

/// Element count below which B panels are packed serially — the latch
/// round-trip costs more than the copy for small operands.
const PAR_PACK_MIN_ELEMS: usize = 32 * 1024;

thread_local! {
    /// Per-thread pack-buffer arena: each pool worker (and the caller)
    /// reuses its own high-water buffers for the life of the process.
    static PACK_ARENA: ScratchArena = const { ScratchArena::new() };
}

/// Statistics of the calling thread's pack arena (for tests/benchmarks).
pub fn pack_arena_stats() -> (u64, u64, usize) {
    PACK_ARENA.with(|a| (a.lease_count(), a.reuse_hits(), a.high_water_elems()))
}

/// The inner-tile implementation used for full `MR × NR` tiles.
///
/// All variants compute the identical per-lane FP sequence (separate
/// multiply and add — no FMA contraction), so they are bit-identical and
/// the choice is purely a speed knob. Edge tiles always use the scalar
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKernel {
    /// Portable scalar accumulator block (always available).
    Scalar,
    /// 8-lane `ymm` kernel via AVX2 intrinsics (x86_64 only).
    Avx2,
    /// Paired `float32x4` kernel via NEON intrinsics (aarch64 only).
    Neon,
}

impl MicroKernel {
    /// Short stable name (used by `ECHO_GEMM_KERNEL` and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            MicroKernel::Scalar => "scalar",
            MicroKernel::Avx2 => "avx2",
            MicroKernel::Neon => "neon",
        }
    }

    /// Whether this variant can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            MicroKernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            MicroKernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            MicroKernel::Avx2 => false,
            // NEON is a baseline feature of aarch64.
            MicroKernel::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The fastest variant available on this host.
    pub fn detect() -> MicroKernel {
        if MicroKernel::Avx2.is_available() {
            MicroKernel::Avx2
        } else if MicroKernel::Neon.is_available() {
            MicroKernel::Neon
        } else {
            MicroKernel::Scalar
        }
    }

    fn micro_fn(self) -> MicroFn {
        match self {
            #[cfg(target_arch = "x86_64")]
            MicroKernel::Avx2 if self.is_available() => micro_full_avx2,
            #[cfg(target_arch = "aarch64")]
            MicroKernel::Neon if self.is_available() => micro_full_neon,
            // Unavailable variants silently fall back to scalar: the
            // result is bit-identical either way.
            _ => micro_full_scalar,
        }
    }
}

/// Every variant that can run on this host (scalar first).
pub fn available_micro_kernels() -> Vec<MicroKernel> {
    [MicroKernel::Scalar, MicroKernel::Avx2, MicroKernel::Neon]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

const KERNEL_UNSET: u8 = u8::MAX;

/// Process-wide micro-kernel override (set via [`set_micro_kernel`]).
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(KERNEL_UNSET);

fn encode_kernel(k: MicroKernel) -> u8 {
    match k {
        MicroKernel::Scalar => 0,
        MicroKernel::Avx2 => 1,
        MicroKernel::Neon => 2,
    }
}

fn decode_kernel(v: u8) -> Option<MicroKernel> {
    match v {
        0 => Some(MicroKernel::Scalar),
        1 => Some(MicroKernel::Avx2),
        2 => Some(MicroKernel::Neon),
        _ => None,
    }
}

/// `ECHO_GEMM_KERNEL` parsed once per process (unknown or unavailable
/// names are ignored and detection applies).
pub(crate) fn env_kernel() -> Option<MicroKernel> {
    static ENV: OnceLock<Option<MicroKernel>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("ECHO_GEMM_KERNEL").ok()?;
        let kernel = match raw.trim().to_ascii_lowercase().as_str() {
            "scalar" => MicroKernel::Scalar,
            "avx2" => MicroKernel::Avx2,
            "neon" => MicroKernel::Neon,
            _ => return None,
        };
        kernel.is_available().then_some(kernel)
    })
}

/// The micro-kernel variant every packed GEMM in this process uses:
/// explicit override ([`set_micro_kernel`]) > `ECHO_GEMM_KERNEL` >
/// runtime detection. All variants are bit-identical, so flipping this is
/// safe at any point; pinning one keeps the *speed* reproducible too.
pub fn active_micro_kernel() -> MicroKernel {
    decode_kernel(KERNEL_OVERRIDE.load(Ordering::Relaxed))
        .or_else(env_kernel)
        .unwrap_or_else(MicroKernel::detect)
}

/// Overrides the process-wide micro-kernel (`None` restores env/detect
/// order). Returns `false` — leaving the state unchanged — if the
/// requested variant is unavailable on this host.
pub fn set_micro_kernel(kernel: Option<MicroKernel>) -> bool {
    match kernel {
        Some(k) if !k.is_available() => false,
        Some(k) => {
            KERNEL_OVERRIDE.store(encode_kernel(k), Ordering::Relaxed);
            true
        }
        None => {
            KERNEL_OVERRIDE.store(KERNEL_UNSET, Ordering::Relaxed);
            true
        }
    }
}

/// Installs `kernel` as the process-wide choice only if no explicit
/// override is already present — the autotuner's entry point, so user and
/// test pins always win. Returns whether the pin took effect.
pub fn pin_micro_kernel_if_unset(kernel: MicroKernel) -> bool {
    if !kernel.is_available() || env_kernel().is_some() {
        return false;
    }
    KERNEL_OVERRIDE
        .compare_exchange(
            KERNEL_UNSET,
            encode_kernel(kernel),
            Ordering::Relaxed,
            Ordering::Relaxed,
        )
        .is_ok()
}

/// Autotuned `(KC, MC)` override, packed `kc << 32 | mc`; 0 = defaults.
static TILE_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// `ECHO_GEMM_TILES` (`"KCxMC"`, e.g. `256x128`) parsed once per process.
pub(crate) fn env_tiles() -> Option<(usize, usize)> {
    static ENV: OnceLock<Option<(usize, usize)>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("ECHO_GEMM_TILES").ok()?;
        let (kc, mc) = raw.trim().split_once(['x', 'X'])?;
        let kc = kc.trim().parse::<usize>().ok().filter(|&v| v > 0)?;
        let mc = mc.trim().parse::<usize>().ok().filter(|&v| v > 0)?;
        Some((kc, mc))
    })
}

/// The `(KC, MC)` tile sizes packed GEMM uses: `ECHO_GEMM_TILES` >
/// [`set_gemm_tiles`] (the autotuner) > compiled defaults. Tile sizes are
/// bit-transparent — the C tile round-trips exactly through memory at
/// every panel boundary — so this is purely a speed knob.
pub fn gemm_tiles() -> (usize, usize) {
    if let Some(t) = env_tiles() {
        return t;
    }
    let packed = TILE_OVERRIDE.load(Ordering::Relaxed);
    if packed == 0 {
        (DEFAULT_KC, DEFAULT_MC)
    } else {
        ((packed >> 32) as usize, (packed & u32::MAX as u64) as usize)
    }
}

/// Installs autotuned tile sizes (subordinate to `ECHO_GEMM_TILES`).
/// Returns `false` for degenerate or unrepresentable sizes.
pub fn set_gemm_tiles(kc: usize, mc: usize) -> bool {
    if kc == 0 || mc == 0 || kc > u32::MAX as usize || mc > u32::MAX as usize {
        return false;
    }
    TILE_OVERRIDE.store(((kc as u64) << 32) | mc as u64, Ordering::Relaxed);
    true
}

/// Serial packed GEMM: `C = alpha*A*B + beta*C` with a row-major `C`.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up or `C` is not row-major.
pub fn gemm_packed(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
) -> Result<()> {
    gemm_packed_parallel(alpha, a, b, beta, c, 1)
}

/// Packed GEMM over at most `ways` row bands run on the shared
/// [worker pool](crate::pool), with the process-wide micro-kernel and
/// tile configuration ([`active_micro_kernel`], [`gemm_tiles`]).
///
/// `B` is packed once — in parallel `(panel, strip)` items for large
/// operands — and shared read-only by all bands; each band packs its own
/// rows of `A` into its thread-local arena. Bands partition **output rows
/// only**, so the per-element accumulation order is independent of `ways`
/// (see the module docs).
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up or `C` is not row-major.
pub fn gemm_packed_parallel(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
    ways: usize,
) -> Result<()> {
    let (kc, mc) = gemm_tiles();
    gemm_packed_parallel_with(alpha, a, b, beta, c, ways, active_micro_kernel(), kc, mc)
}

/// [`gemm_packed_parallel`] with an explicit micro-kernel and `(KC, MC)`
/// tile configuration — the entry point tests, benches and the autotuner
/// use to avoid racing on the process-global settings. An unavailable
/// `kernel` silently falls back to scalar (bit-identical result).
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`] when the operand shapes do not
/// line up or `C` is not row-major.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_parallel_with(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
    ways: usize,
    kernel: MicroKernel,
    kc_tile: usize,
    mc_tile: usize,
) -> Result<()> {
    crate::gemm::check_dims(&a, &b, c)?;
    if c.layout() != MatrixLayout::RowMajor {
        return Err(TensorError::GemmDimension {
            a: (a.rows(), a.cols()),
            b: (b.rows(), b.cols()),
            c: (c.rows(), c.cols()),
        });
    }
    c.scale(beta);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || n == 0 || k == 0 {
        return Ok(()); // beta-scale already applied; no products contribute
    }
    let kc_tile = kc_tile.max(1);
    let mc_tile = mc_tile.max(MR);
    let micro = kernel.micro_fn();

    let n_strips = n.div_ceil(NR);
    // Panel starting at p0 lives at offset p0 * n_strips * NR: panels are
    // stored back to back and each holds kc * n_strips * NR values.
    PACK_ARENA.with(|arena| {
        arena.with_f32(k * n_strips * NR, |bpack| {
            pack_b(b, k, n, n_strips, kc_tile, bpack);

            let bands = band_count(m, MR, ways);
            let cd = c.data_mut();
            if bands <= 1 {
                packed_band(
                    alpha, a, 0, m, bpack, k, n, n_strips, cd, micro, kc_tile, mc_tile,
                );
                return;
            }
            let rows_per = m.div_ceil(bands);
            let bpack: &[f32] = bpack;
            let cbase = SendPtr(cd.as_mut_ptr());
            let cbase = &cbase;
            pool::global().run_indexed(bands, &move |band_idx| {
                let row0 = band_idx * rows_per;
                if row0 >= m {
                    return; // rounding can leave a trailing empty band
                }
                let band_rows = rows_per.min(m - row0);
                // SAFETY: bands partition C's rows disjointly, so each
                // index writes a non-overlapping `band_rows × n` slice.
                let band =
                    unsafe { std::slice::from_raw_parts_mut(cbase.0.add(row0 * n), band_rows * n) };
                packed_band(
                    alpha, a, row0, band_rows, bpack, k, n, n_strips, band, micro, kc_tile, mc_tile,
                );
            });
        });
    });
    Ok(())
}

/// Packs all of `B` into `kc_tile`-deep panels of `NR`-column strips —
/// in parallel `(panel, strip)` items on the pool for large operands.
fn pack_b(b: MatView<'_>, k: usize, n: usize, n_strips: usize, kc_tile: usize, bpack: &mut [f32]) {
    let n_panels = k.div_ceil(kc_tile);
    let items = n_panels * n_strips;
    let pool = pool::global();
    if items > 1 && k * n >= PAR_PACK_MIN_ELEMS && pool.num_threads() > 1 {
        let base = SendPtr(bpack.as_mut_ptr());
        let base = &base;
        pool.run_indexed(items, &move |item| {
            let panel = item / n_strips;
            let js = item % n_strips;
            let p0 = panel * kc_tile;
            let kc = kc_tile.min(k - p0);
            let off = p0 * n_strips * NR + js * kc * NR;
            // SAFETY: each (panel, strip) item owns a disjoint `kc × NR`
            // region of the pack buffer.
            let strip = unsafe { std::slice::from_raw_parts_mut(base.0.add(off), kc * NR) };
            pack_b_strip(b, p0, kc, js * NR, n, strip);
        });
        return;
    }
    let mut p0 = 0;
    while p0 < k {
        let kc = kc_tile.min(k - p0);
        for js in 0..n_strips {
            let strip = &mut bpack[p0 * n_strips * NR + js * kc * NR..][..kc * NR];
            pack_b_strip(b, p0, kc, js * NR, n, strip);
        }
        p0 += kc;
    }
}

/// Computes rows `row0 .. row0 + rows` of `C` (a row-major `rows × n`
/// slice) against the fully packed `B`. `alpha` is folded into the A pack.
#[allow(clippy::too_many_arguments)]
fn packed_band(
    alpha: f32,
    a: MatView<'_>,
    row0: usize,
    rows: usize,
    bpack: &[f32],
    k: usize,
    n: usize,
    n_strips: usize,
    cband: &mut [f32],
    micro: MicroFn,
    kc_tile: usize,
    mc_tile: usize,
) {
    PACK_ARENA.with(|arena| {
        let mut p0 = 0;
        while p0 < k {
            let kc = kc_tile.min(k - p0);
            let bpanel = &bpack[p0 * n_strips * NR..][..kc * n_strips * NR];
            let mut i0 = 0;
            while i0 < rows {
                let ic = mc_tile.min(rows - i0);
                let i_strips = ic.div_ceil(MR);
                arena.with_f32(i_strips * MR * kc, |apack| {
                    pack_a_block(alpha, a, row0 + i0, ic, p0, kc, apack);
                    for js in 0..n_strips {
                        let j0 = js * NR;
                        let nr = NR.min(n - j0);
                        let bstrip = &bpanel[js * kc * NR..][..kc * NR];
                        for is in 0..i_strips {
                            let ii = is * MR;
                            let mr = MR.min(ic - ii);
                            let astrip = &apack[is * kc * MR..][..kc * MR];
                            let coff = (i0 + ii) * n + j0;
                            if mr == MR && nr == NR {
                                // SAFETY: the variant behind `micro` was
                                // availability-checked in `micro_fn`, and
                                // the C slice holds the full MR×NR tile.
                                unsafe { micro(kc, astrip, bstrip, &mut cband[coff..], n) };
                            } else {
                                micro_edge(kc, astrip, bstrip, cband, coff, n, mr, nr);
                            }
                        }
                    }
                });
                i0 += ic;
            }
            p0 += kc;
        }
    });
}

/// Packs one `NR`-column strip of a `kc`-deep B panel: `kc × NR` values,
/// row-of-panel major, zero-padded past column `n`.
fn pack_b_strip(b: MatView<'_>, p0: usize, kc: usize, j0: usize, n: usize, strip: &mut [f32]) {
    let (brs, bcs) = (
        b.layout().row_stride(b.rows(), b.cols()),
        b.layout().col_stride(b.rows(), b.cols()),
    );
    let bd = b.data();
    let nr = NR.min(n - j0);
    for p in 0..kc {
        let brow = (p0 + p) * brs;
        let dst = &mut strip[p * NR..p * NR + NR];
        for (j, d) in dst.iter_mut().enumerate() {
            *d = if j < nr {
                bd[brow + (j0 + j) * bcs]
            } else {
                0.0
            };
        }
    }
}

/// Packs `ic` rows of `A` starting at `row0` (k range `p0 .. p0 + kc`)
/// into `MR`-row strips with `alpha` pre-multiplied (reproducing the naive
/// kernel's `aval = alpha * a[i, p]` rounding exactly); rows past the edge
/// are zero.
fn pack_a_block(
    alpha: f32,
    a: MatView<'_>,
    row0: usize,
    ic: usize,
    p0: usize,
    kc: usize,
    out: &mut [f32],
) {
    let (ars, acs) = (
        a.layout().row_stride(a.rows(), a.cols()),
        a.layout().col_stride(a.rows(), a.cols()),
    );
    let ad = a.data();
    let i_strips = ic.div_ceil(MR);
    for is in 0..i_strips {
        let ii = is * MR;
        let mr = MR.min(ic - ii);
        let strip = &mut out[is * kc * MR..][..kc * MR];
        for p in 0..kc {
            let acol = (p0 + p) * acs;
            let dst = &mut strip[p * MR..p * MR + MR];
            for (i, d) in dst.iter_mut().enumerate() {
                *d = if i < mr {
                    alpha * ad[(row0 + ii + i) * ars + acol]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Signature shared by every full-tile micro-kernel variant. `unsafe`
/// because the SIMD variants require their target feature (checked once
/// at selection time) and index `c` through raw pointers.
type MicroFn = unsafe fn(usize, &[f32], &[f32], &mut [f32], usize);

/// Full `MR × NR` scalar micro-kernel: loads the C tile into register
/// accumulators, adds `kc` rank-1 updates in ascending `p`, stores back.
/// `c` points at the tile's top-left element; `ldc` is C's row stride.
///
/// (`unsafe fn` only to match [`MicroFn`]; the body is safe code.)
unsafe fn micro_full_scalar(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[i * ldc..i * ldc + NR]);
    }
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = a[i];
            for (j, acc_ij) in row.iter_mut().enumerate() {
                *acc_ij += ai * b[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + NR].copy_from_slice(row);
    }
}

/// Full-tile AVX2 micro-kernel: one 8-lane `ymm` accumulator per C row.
/// Uses a separate `_mm256_mul_ps` + `_mm256_add_ps` per update — *not*
/// FMA — so each lane's rounding sequence matches the scalar kernel
/// exactly (see the module docs on bit-exactness).
///
/// # Safety
///
/// Requires AVX2 (callers go through [`MicroKernel::micro_fn`], which
/// checks availability) and a `c` slice covering the full `MR × NR` tile
/// at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_full_avx2(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    unsafe {
        let cp = c.as_mut_ptr();
        let mut acc0 = _mm256_loadu_ps(cp);
        let mut acc1 = _mm256_loadu_ps(cp.add(ldc));
        let mut acc2 = _mm256_loadu_ps(cp.add(2 * ldc));
        let mut acc3 = _mm256_loadu_ps(cp.add(3 * ldc));
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        for _ in 0..kc {
            let bv = _mm256_loadu_ps(b);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(*a), bv));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(*a.add(1)), bv));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(*a.add(2)), bv));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(*a.add(3)), bv));
            a = a.add(MR);
            b = b.add(NR);
        }
        _mm256_storeu_ps(cp, acc0);
        _mm256_storeu_ps(cp.add(ldc), acc1);
        _mm256_storeu_ps(cp.add(2 * ldc), acc2);
        _mm256_storeu_ps(cp.add(3 * ldc), acc3);
    }
}

/// Full-tile NEON micro-kernel: two `float32x4` accumulators per C row.
/// Separate `vmulq_f32` + `vaddq_f32` per update — no FMA — for the same
/// bit-exactness argument as the AVX2 variant.
///
/// # Safety
///
/// Requires NEON (baseline on aarch64; callers go through
/// [`MicroKernel::micro_fn`]) and a `c` slice covering the full `MR × NR`
/// tile at row stride `ldc`.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn micro_full_neon(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    use std::arch::aarch64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    unsafe {
        let cp = c.as_mut_ptr();
        let mut lo = [vdupq_n_f32(0.0); MR];
        let mut hi = [vdupq_n_f32(0.0); MR];
        for i in 0..MR {
            lo[i] = vld1q_f32(cp.add(i * ldc));
            hi[i] = vld1q_f32(cp.add(i * ldc + 4));
        }
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        for _ in 0..kc {
            let blo = vld1q_f32(b);
            let bhi = vld1q_f32(b.add(4));
            for i in 0..MR {
                let ai = vdupq_n_f32(*a.add(i));
                lo[i] = vaddq_f32(lo[i], vmulq_f32(ai, blo));
                hi[i] = vaddq_f32(hi[i], vmulq_f32(ai, bhi));
            }
            a = a.add(MR);
            b = b.add(NR);
        }
        for i in 0..MR {
            vst1q_f32(cp.add(i * ldc), lo[i]);
            vst1q_f32(cp.add(i * ldc + 4), hi[i]);
        }
    }
}

/// Edge micro-kernel for partial tiles (`mr ≤ MR`, `nr ≤ NR`): valid
/// lanes are loaded from C and stored back; padded lanes accumulate only
/// products of physical zeros and are discarded. Always scalar — partial
/// tiles are rare and the scalar block is bit-identical to SIMD anyway.
#[allow(clippy::too_many_arguments)]
fn micro_edge(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    coff: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&c[coff + i * ldc..coff + i * ldc + nr]);
    }
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = a[i];
            for (j, acc_ij) in row.iter_mut().enumerate() {
                *acc_ij += ai * b[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr) {
        c[coff + i * ldc..coff + i * ldc + nr].copy_from_slice(&row[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, gemm_blocked};
    use crate::layout::MatrixLayout::{ColMajor, RowMajor};

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|v| {
                (((v as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) % 2048) as f32
                    / 256.0
                    - 4.0
            })
            .collect()
    }

    #[test]
    fn packed_is_bit_identical_to_naive() {
        // Shapes straddle MR/NR/KC edges.
        for (m, k, n) in [
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 9),
            (37, 300, 65),
            (64, 257, 33),
        ] {
            for la in [RowMajor, ColMajor] {
                for lb in [RowMajor, ColMajor] {
                    let a_data = fill(m * k, 1);
                    let b_data = fill(k * n, 2);
                    let a = MatView::new(&a_data, m, k, la);
                    let b = MatView::new(&b_data, k, n, lb);
                    let mut c1 = fill(m * n, 3);
                    let mut c2 = c1.clone();
                    gemm(
                        1.25,
                        a,
                        b,
                        0.5,
                        &mut MatViewMut::new(&mut c1, m, n, RowMajor),
                    )
                    .unwrap();
                    gemm_packed(
                        1.25,
                        a,
                        b,
                        0.5,
                        &mut MatViewMut::new(&mut c2, m, n, RowMajor),
                    )
                    .unwrap();
                    assert_eq!(
                        c1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        c2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{m}x{k}x{n} {la:?} {lb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_kernel_and_tile_config_is_bit_identical() {
        let (m, k, n) = (37, 300, 65);
        let a_data = fill(m * k, 21);
        let b_data = fill(k * n, 22);
        let init = fill(m * n, 23);
        let mut reference = init.clone();
        gemm(
            1.25,
            MatView::new(&a_data, m, k, RowMajor),
            MatView::new(&b_data, k, n, RowMajor),
            0.5,
            &mut MatViewMut::new(&mut reference, m, n, RowMajor),
        )
        .unwrap();
        for kernel in available_micro_kernels() {
            for (kc, mc) in [(DEFAULT_KC, DEFAULT_MC), (64, 32), (128, 64), (512, 256)] {
                for ways in [1usize, 3] {
                    let mut c = init.clone();
                    gemm_packed_parallel_with(
                        1.25,
                        MatView::new(&a_data, m, k, RowMajor),
                        MatView::new(&b_data, k, n, RowMajor),
                        0.5,
                        &mut MatViewMut::new(&mut c, m, n, RowMajor),
                        ways,
                        kernel,
                        kc,
                        mc,
                    )
                    .unwrap();
                    assert_eq!(
                        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "kernel {} kc {kc} mc {mc} ways {ways}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_override_round_trips() {
        // The default on this host must itself be available.
        assert!(active_micro_kernel().is_available());
        assert!(set_micro_kernel(Some(MicroKernel::Scalar)));
        assert_eq!(active_micro_kernel(), MicroKernel::Scalar);
        assert!(set_micro_kernel(None));
        #[cfg(not(target_arch = "x86_64"))]
        assert!(!set_micro_kernel(Some(MicroKernel::Avx2)));
    }

    #[test]
    fn packed_parallel_bit_identical_for_every_way_count() {
        let (m, k, n) = (61, 130, 47);
        let a_data = fill(m * k, 7);
        let b_data = fill(k * n, 11);
        let mut reference = fill(m * n, 13);
        let init = reference.clone();
        gemm_blocked(
            1.0,
            MatView::new(&a_data, m, k, RowMajor),
            MatView::new(&b_data, k, n, RowMajor),
            1.0,
            &mut MatViewMut::new(&mut reference, m, n, RowMajor),
        )
        .unwrap();
        for ways in [1usize, 2, 4, 8] {
            let mut c = init.clone();
            gemm_packed_parallel(
                1.0,
                MatView::new(&a_data, m, k, RowMajor),
                MatView::new(&b_data, k, n, RowMajor),
                1.0,
                &mut MatViewMut::new(&mut c, m, n, RowMajor),
                ways,
            )
            .unwrap();
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "ways = {ways}"
            );
        }
    }

    #[test]
    fn packed_propagates_nan_from_b() {
        let a_data = vec![0.0f32; 4 * 2];
        let mut b_data = vec![1.0f32; 2 * 8];
        b_data[0] = f32::NAN;
        let mut c = vec![0.0f32; 4 * 8];
        gemm_packed(
            1.0,
            MatView::new(&a_data, 4, 2, RowMajor),
            MatView::new(&b_data, 2, 8, RowMajor),
            0.0,
            &mut MatViewMut::new(&mut c, 4, 8, RowMajor),
        )
        .unwrap();
        assert!(c[0].is_nan(), "0 × NaN must propagate through the pack");
    }

    #[test]
    fn packed_handles_degenerate_shapes() {
        let mut c = vec![3.0f32; 6];
        gemm_packed(
            1.0,
            MatView::new(&[], 2, 0, RowMajor),
            MatView::new(&[], 0, 3, RowMajor),
            0.5,
            &mut MatViewMut::new(&mut c, 2, 3, RowMajor),
        )
        .unwrap();
        assert_eq!(c, vec![1.5f32; 6]);

        let mut empty: Vec<f32> = vec![];
        gemm_packed(
            1.0,
            MatView::new(&[1.0, 2.0], 2, 1, RowMajor),
            MatView::new(&[], 1, 0, RowMajor),
            0.0,
            &mut MatViewMut::new(&mut empty, 2, 0, RowMajor),
        )
        .unwrap();
    }

    #[test]
    fn pack_buffers_are_reused_across_calls() {
        let (m, k, n) = (16, 32, 16);
        let a_data = fill(m * k, 1);
        let b_data = fill(k * n, 2);
        let before = pack_arena_stats().0;
        for _ in 0..8 {
            let mut c = vec![0.0f32; m * n];
            gemm_packed(
                1.0,
                MatView::new(&a_data, m, k, RowMajor),
                MatView::new(&b_data, k, n, RowMajor),
                0.0,
                &mut MatViewMut::new(&mut c, m, n, RowMajor),
            )
            .unwrap();
        }
        let (leases, hits, _) = pack_arena_stats();
        let new_leases = leases - before;
        assert_eq!(new_leases, 16, "one B pack + one A pack per call");
        // Every lease after the first pair reuses a retained buffer.
        assert!(hits >= new_leases - 2, "leases {new_leases}, hits {hits}");
    }

    #[test]
    fn packed_rejects_col_major_output() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        assert!(gemm_packed(
            1.0,
            MatView::new(&a, 2, 2, RowMajor),
            MatView::new(&b, 2, 2, RowMajor),
            0.0,
            &mut MatViewMut::new(&mut c, 2, 2, ColMajor),
        )
        .is_err());
    }
}
