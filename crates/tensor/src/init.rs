//! Weight initialization.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used across the reproduction so every experiment is
/// exactly repeatable.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform initialization in `[-scale, scale]`.
pub fn uniform(shape: Shape, scale: f32, rng: &mut StdRng) -> Tensor {
    let n = shape.num_elements();
    let data = (0..n).map(|_| rng.gen_range(-scale..=scale)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// Xavier/Glorot uniform initialization for a `[fan_out x fan_in]` weight.
pub fn xavier(fan_out: usize, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let scale = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    uniform(Shape::d2(fan_out, fan_in), scale, rng)
}

/// LSTM-style initialization: uniform in `[-1/sqrt(H), 1/sqrt(H)]`, the
/// default used by MXNet's RNN layers.
pub fn lstm_uniform(shape: Shape, hidden: usize, rng: &mut StdRng) -> Tensor {
    let scale = 1.0 / (hidden as f32).sqrt();
    uniform(shape, scale, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut r1 = seeded_rng(42);
        let mut r2 = seeded_rng(42);
        let a = uniform(Shape::d2(4, 4), 0.5, &mut r1);
        let b = uniform(Shape::d2(4, 4), 0.5, &mut r2);
        assert_eq!(a, b);
        let mut r3 = seeded_rng(43);
        let c = uniform(Shape::d2(4, 4), 0.5, &mut r3);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(7);
        let t = uniform(Shape::d1(1000), 0.1, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.1..=0.1).contains(&v)));
        // Mean should be near zero.
        assert!(t.sum().abs() / 1000.0 < 0.01);
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = seeded_rng(7);
        let small = xavier(4, 4, &mut rng);
        let big = xavier(1024, 1024, &mut rng);
        assert!(big.max_abs() < small.max_abs());
    }
}
