//! Neural-network kernels: activations, softmax/cross-entropy, embedding,
//! layer normalization and optimizer updates.
//!
//! Forward kernels come paired with the backward kernels that consume the
//! stashed feature maps — the exact values whose storage the Echo pass
//! trades for recomputation.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::{pool, Result};

/// Row-wise kernels on tensors smaller than this stay serial.
const PAR_ROWS_THRESHOLD: usize = 16 * 1024;

/// Number of row bands for a `[rows × cols]` kernel on the worker pool.
fn row_bands(rows: usize, cols: usize) -> usize {
    let threads = pool::global().num_threads();
    if threads == 1 || rows.saturating_mul(cols) < PAR_ROWS_THRESHOLD {
        1
    } else {
        pool::band_count(rows, 4, threads)
    }
}

/// Runs `per_row(r, dst_row)` for every row of a `[rows × cols]` output
/// buffer, banding rows over the shared worker pool when the tensor is
/// large. Each row is produced by exactly one band with the same serial
/// body, so results are bit-identical for any worker count.
fn for_each_row(
    out: &mut [f32],
    rows: usize,
    cols: usize,
    per_row: impl Fn(usize, &mut [f32]) + Sync,
) {
    if rows == 0 || cols == 0 {
        return;
    }
    let bands = row_bands(rows, cols);
    if bands <= 1 {
        for (r, dst) in out.chunks_mut(cols).enumerate() {
            per_row(r, dst);
        }
        return;
    }
    let rows_per = rows.div_ceil(bands);
    let base = pool::SendPtr(out.as_mut_ptr());
    let base = &base;
    let per_row = &per_row;
    pool::global().run_indexed(bands, &move |bi| {
        let r0 = bi * rows_per;
        if r0 >= rows {
            return;
        }
        let band_rows = rows_per.min(rows - r0);
        // SAFETY: bands partition the rows disjointly, so each index
        // writes a non-overlapping `band_rows × cols` slice.
        let band =
            unsafe { std::slice::from_raw_parts_mut(base.0.add(r0 * cols), band_rows * cols) };
        for (rr, dst) in band.chunks_mut(cols).enumerate() {
            per_row(r0 + rr, dst);
        }
    });
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed in terms of its *output* `y = σ(x)`.
///
/// Expressing derivatives in terms of outputs is why frameworks stash the
/// activation output as a feature map (paper §3.2).
#[inline]
pub fn sigmoid_grad_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Derivative of tanh expressed in terms of its output `y = tanh(x)`.
#[inline]
pub fn tanh_grad_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Element-wise tanh.
#[must_use]
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

/// Element-wise sigmoid.
#[must_use]
pub fn sigmoid_t(x: &Tensor) -> Tensor {
    x.map(sigmoid)
}

/// Element-wise ReLU.
#[must_use]
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Backward of tanh given the stashed output and incoming gradient.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn tanh_backward(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    y.zip_map(dy, |y, g| g * tanh_grad_from_output(y))
}

/// Backward of sigmoid given the stashed output and incoming gradient.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn sigmoid_backward(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    y.zip_map(dy, |y, g| g * sigmoid_grad_from_output(y))
}

/// Row-wise softmax over the last axis of a `[rows x cols]`-flattened
/// tensor (rows banded over the worker pool; see [`for_each_row`]).
#[must_use]
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = x.shape().as_matrix();
    let mut out = Tensor::zeros(x.shape().clone());
    let xd = x.data();
    for_each_row(out.data_mut(), rows, cols, |r, out_row| {
        let row = &xd[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for (o, &v) in out_row.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in out_row.iter_mut() {
            *o *= inv;
        }
    });
    out
}

/// Backward of row-wise softmax given stashed output `y` and gradient `dy`:
/// `dx = y ⊙ (dy − (y · dy))` per row.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn softmax_rows_backward(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    if y.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            left: y.shape().clone(),
            right: dy.shape().clone(),
            op: "softmax_backward",
        });
    }
    let (rows, cols) = y.shape().as_matrix();
    let mut dx = Tensor::zeros(y.shape().clone());
    let (yd, gd) = (y.data(), dy.data());
    for_each_row(dx.data_mut(), rows, cols, |r, dr| {
        let yr = &yd[r * cols..(r + 1) * cols];
        let gr = &gd[r * cols..(r + 1) * cols];
        let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
        for ((d, &yv), &gv) in dr.iter_mut().zip(yr).zip(gr) {
            *d = yv * (gv - dot);
        }
    });
    Ok(dx)
}

/// Softmax + cross-entropy loss over rows, with integer targets.
///
/// Returns `(mean_loss_nats, probabilities)`. Targets equal to `ignore_index`
/// (e.g. padding) contribute neither loss nor gradient.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `targets.len()` differs from
/// the number of rows.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    targets: &[usize],
    ignore_index: Option<usize>,
) -> Result<(f32, Tensor)> {
    let (rows, cols) = logits.shape().as_matrix();
    if targets.len() != rows {
        return Err(TensorError::LengthMismatch {
            shape: logits.shape().clone(),
            len: targets.len(),
        });
    }
    let probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut counted = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if Some(t) == ignore_index {
            continue;
        }
        let p = probs.data()[r * cols + t].max(1e-12);
        loss -= f64::from(p.ln());
        counted += 1;
    }
    let mean = if counted == 0 {
        0.0
    } else {
        (loss / counted as f64) as f32
    };
    Ok((mean, probs))
}

/// Gradient of [`softmax_cross_entropy`] w.r.t. the logits, given the stashed
/// probabilities: `(p − 1{target}) / counted`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `targets.len()` differs from
/// the number of rows.
pub fn softmax_cross_entropy_backward(
    probs: &Tensor,
    targets: &[usize],
    ignore_index: Option<usize>,
) -> Result<Tensor> {
    let (rows, cols) = probs.shape().as_matrix();
    if targets.len() != rows {
        return Err(TensorError::LengthMismatch {
            shape: probs.shape().clone(),
            len: targets.len(),
        });
    }
    let counted = targets
        .iter()
        .filter(|&&t| Some(t) != ignore_index)
        .count()
        .max(1) as f32;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        let row = &mut grad.data_mut()[r * cols..(r + 1) * cols];
        if Some(t) == ignore_index {
            row.fill(0.0);
        } else {
            row[t] -= 1.0;
            for v in row.iter_mut() {
                *v /= counted;
            }
        }
    }
    Ok(grad)
}

/// Embedding lookup: gathers rows of `table` (`[V x H]`) for each id.
///
/// Returns a `[ids.len() x H]` tensor.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] for an id `>= V`.
pub fn embedding_lookup(table: &Tensor, ids: &[usize]) -> Result<Tensor> {
    let (v, h) = table.shape().as_matrix();
    let mut out = Tensor::zeros(Shape::d2(ids.len(), h));
    for (r, &id) in ids.iter().enumerate() {
        if id >= v {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![id],
                shape: table.shape().clone(),
            });
        }
        out.data_mut()[r * h..(r + 1) * h].copy_from_slice(&table.data()[id * h..(id + 1) * h]);
    }
    Ok(out)
}

/// Scatter-add gradient of [`embedding_lookup`] into `d_table`.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] for an id out of range and
/// [`TensorError::ShapeMismatch`] if `d_out` has the wrong number of rows.
pub fn embedding_backward(d_table: &mut Tensor, ids: &[usize], d_out: &Tensor) -> Result<()> {
    let (v, h) = d_table.shape().as_matrix();
    let (rows, hc) = d_out.shape().as_matrix();
    if rows != ids.len() || hc != h {
        return Err(TensorError::ShapeMismatch {
            left: d_table.shape().clone(),
            right: d_out.shape().clone(),
            op: "embedding_backward",
        });
    }
    for (r, &id) in ids.iter().enumerate() {
        if id >= v {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![id],
                shape: d_table.shape().clone(),
            });
        }
        let src = &d_out.data()[r * h..(r + 1) * h];
        let dst = &mut d_table.data_mut()[id * h..(id + 1) * h];
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
    Ok(())
}

/// Feature maps stashed by [`layer_norm`] for its backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNormSaved {
    /// Normalized activations `x̂` (`[rows x cols]`).
    pub normalized: Tensor,
    /// Per-row `1 / sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
}

/// Row-wise layer normalization with learned `gamma`/`beta` (`[cols]`).
///
/// Returns the output and the stashed values the backward pass needs — the
/// kind of feature map the attention scoring function accumulates at every
/// decoder step.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `gamma`/`beta` do not have
/// `cols` elements.
pub fn layer_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, LayerNormSaved)> {
    let (rows, cols) = x.shape().as_matrix();
    if gamma.len() != cols || beta.len() != cols {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().clone(),
            right: gamma.shape().clone(),
            op: "layer_norm",
        });
    }
    let mut out = Tensor::zeros(x.shape().clone());
    let mut normalized = Tensor::zeros(x.shape().clone());
    let mut inv_std = vec![0.0f32; rows];
    let (xd, gd, bd) = (x.data(), gamma.data(), beta.data());
    let ln_row = |row: &[f32], out_row: &mut [f32], norm_row: &mut [f32], istd_out: &mut f32| {
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let istd = 1.0 / (var + eps).sqrt();
        *istd_out = istd;
        for (c, &xv) in row.iter().enumerate() {
            let xh = (xv - mean) * istd;
            norm_row[c] = xh;
            out_row[c] = xh * gd[c] + bd[c];
        }
    };
    // Row-band like for_each_row, but over three per-row outputs at once
    // (out, normalized, inv_std). Each row is written by exactly one band.
    let bands = if cols == 0 { 1 } else { row_bands(rows, cols) };
    if bands <= 1 {
        let norm_data = normalized.data_mut();
        let out_data = out.data_mut();
        for r in 0..rows {
            let row = &xd[r * cols..(r + 1) * cols];
            ln_row(
                row,
                &mut out_data[r * cols..(r + 1) * cols],
                &mut norm_data[r * cols..(r + 1) * cols],
                &mut inv_std[r],
            );
        }
    } else {
        let rows_per = rows.div_ceil(bands);
        let out_base = pool::SendPtr(out.data_mut().as_mut_ptr());
        let norm_base = pool::SendPtr(normalized.data_mut().as_mut_ptr());
        let istd_base = pool::SendPtr(inv_std.as_mut_ptr());
        let (out_base, norm_base, istd_base) = (&out_base, &norm_base, &istd_base);
        let ln_row = &ln_row;
        pool::global().run_indexed(bands, &move |bi| {
            let r0 = bi * rows_per;
            if r0 >= rows {
                return;
            }
            let band_rows = rows_per.min(rows - r0);
            for rr in 0..band_rows {
                let r = r0 + rr;
                // SAFETY: bands partition the rows disjointly, so each
                // index writes non-overlapping rows of all three buffers.
                let (out_row, norm_row, istd) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(out_base.0.add(r * cols), cols),
                        std::slice::from_raw_parts_mut(norm_base.0.add(r * cols), cols),
                        &mut *istd_base.0.add(r),
                    )
                };
                ln_row(&xd[r * cols..(r + 1) * cols], out_row, norm_row, istd);
            }
        });
    }
    Ok((
        out,
        LayerNormSaved {
            normalized,
            inv_std,
        },
    ))
}

/// Backward of [`layer_norm`]; returns `(dx, dgamma, dbeta)`.
///
/// Deliberately **serial**: `dgamma`/`dbeta` accumulate contributions
/// across rows in row order, so row-banding this kernel would change the
/// FP accumulation order and break the bit-exactness-under-parallelism
/// contract (`dx` alone would be safe, but it shares the row loop).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `dy` does not match the
/// stashed shape.
pub fn layer_norm_backward(
    saved: &LayerNormSaved,
    gamma: &Tensor,
    dy: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (rows, cols) = saved.normalized.shape().as_matrix();
    if dy.shape() != saved.normalized.shape() {
        return Err(TensorError::ShapeMismatch {
            left: saved.normalized.shape().clone(),
            right: dy.shape().clone(),
            op: "layer_norm_backward",
        });
    }
    let mut dx = Tensor::zeros(dy.shape().clone());
    let mut dgamma = Tensor::zeros(Shape::d1(cols));
    let mut dbeta = Tensor::zeros(Shape::d1(cols));
    for r in 0..rows {
        let xh = &saved.normalized.data()[r * cols..(r + 1) * cols];
        let g = &dy.data()[r * cols..(r + 1) * cols];
        // dL/dx̂ = dy * gamma
        let dxh: Vec<f32> = (0..cols).map(|c| g[c] * gamma.data()[c]).collect();
        let mean_dxh = dxh.iter().sum::<f32>() / cols as f32;
        let mean_dxh_xh = dxh.iter().zip(xh).map(|(&a, &b)| a * b).sum::<f32>() / cols as f32;
        let istd = saved.inv_std[r];
        for c in 0..cols {
            dx.data_mut()[r * cols + c] = istd * (dxh[c] - mean_dxh - xh[c] * mean_dxh_xh);
            dgamma.data_mut()[c] += g[c] * xh[c];
            dbeta.data_mut()[c] += g[c];
        }
    }
    Ok((dx, dgamma, dbeta))
}

/// Scales gradients in place so their global L2 norm is at most `max_norm`.
///
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [&mut Tensor], max_norm: f64) -> f64 {
    let total: f64 = grads
        .iter()
        .map(|g| g.norm_l2().powi(2))
        .sum::<f64>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = (max_norm / total) as f32;
        for g in grads.iter_mut() {
            g.scale_inplace(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-100.0) < 1e-20);
    }

    #[test]
    fn activation_backward_matches_finite_difference() {
        let x = Tensor::from_vec(Shape::d1(4), vec![-1.5, -0.2, 0.3, 2.0]).unwrap();
        let dy = Tensor::full(Shape::d1(4), 1.0);
        let y = tanh(&x);
        let dx = tanh_backward(&y, &dy).unwrap();
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (tanh(&xp).data()[i] - tanh(&xm).data()[i]) / (2.0 * eps);
            assert!((dx.data()[i] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Invariance to a constant shift per row.
        let shifted = x.map(|v| v + 10.0);
        assert!(y.approx_eq(&softmax_rows(&shifted), 1e-6).unwrap());
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits =
            Tensor::from_vec(Shape::d2(2, 3), vec![0.5, -0.3, 0.1, 1.0, 0.0, -1.0]).unwrap();
        let targets = [2usize, 0usize];
        let (_, probs) = softmax_cross_entropy(&logits, &targets, None).unwrap();
        let grad = softmax_cross_entropy_backward(&probs, &targets, None).unwrap();
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &targets, None).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &targets, None).unwrap();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - fd).abs() < 1e-3,
                "elem {i}: analytic {} vs fd {fd}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn ignore_index_masks_loss_and_grad() {
        let logits = Tensor::from_vec(Shape::d2(2, 2), vec![5.0, -5.0, -5.0, 5.0]).unwrap();
        let (loss, probs) = softmax_cross_entropy(&logits, &[0, 1], Some(1)).unwrap();
        let (loss_all, _) = softmax_cross_entropy(&logits, &[0, 1], None).unwrap();
        assert!(loss <= loss_all + 1e-6);
        let grad = softmax_cross_entropy_backward(&probs, &[0, 1], Some(1)).unwrap();
        assert_eq!(&grad.data()[2..4], &[0.0, 0.0]);
    }

    #[test]
    fn embedding_round_trip() {
        let table = Tensor::from_fn(Shape::d2(4, 3), |i| i as f32);
        let out = embedding_lookup(&table, &[2, 0, 2]).unwrap();
        assert_eq!(out.get(&[0, 0]).unwrap(), 6.0);
        assert_eq!(out.get(&[1, 2]).unwrap(), 2.0);
        let mut dtab = Tensor::zeros(Shape::d2(4, 3));
        let dout = Tensor::full(Shape::d2(3, 3), 1.0);
        embedding_backward(&mut dtab, &[2, 0, 2], &dout).unwrap();
        assert_eq!(dtab.get(&[2, 1]).unwrap(), 2.0); // id 2 appears twice
        assert_eq!(dtab.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(dtab.get(&[3, 0]).unwrap(), 0.0);
        assert!(embedding_lookup(&table, &[4]).is_err());
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let x = Tensor::from_vec(Shape::d2(2, 4), vec![1., 2., 3., 4., -2., 0., 2., 8.]).unwrap();
        let gamma = Tensor::full(Shape::d1(4), 1.0);
        let beta = Tensor::zeros(Shape::d1(4));
        let (y, _) = layer_norm(&x, &gamma, &beta, 1e-5).unwrap();
        for r in 0..2 {
            let row = &y.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layer_norm_backward_matches_finite_difference() {
        let x = Tensor::from_vec(Shape::d2(1, 4), vec![0.5, -1.0, 2.0, 0.0]).unwrap();
        let gamma = Tensor::from_vec(Shape::d1(4), vec![1.0, 0.5, 2.0, 1.5]).unwrap();
        let beta = Tensor::from_vec(Shape::d1(4), vec![0.1, -0.1, 0.0, 0.2]).unwrap();
        let (_, saved) = layer_norm(&x, &gamma, &beta, 1e-5).unwrap();
        // Loss = sum(y).
        let dy = Tensor::full(Shape::d2(1, 4), 1.0);
        let (dx, dgamma, dbeta) = layer_norm_backward(&saved, &gamma, &dy).unwrap();
        let eps = 1e-3;
        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let (y, _) = layer_norm(x, g, b, 1e-5).unwrap();
            y.sum() as f32
        };
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!((dx.data()[i] - fd).abs() < 1e-2, "dx[{i}]");
            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm = gamma.clone();
            gm.data_mut()[i] -= eps;
            let fd = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps);
            assert!((dgamma.data()[i] - fd).abs() < 1e-2, "dgamma[{i}]");
            assert!((dbeta.data()[i] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn clip_global_norm_scales() {
        let mut a = Tensor::full(Shape::d1(4), 3.0);
        let mut b = Tensor::full(Shape::d1(4), 4.0);
        let norm = clip_global_norm(&mut [&mut a, &mut b], 1.0);
        assert!((norm - 10.0).abs() < 1e-6);
        let after: f64 = (a.norm_l2().powi(2) + b.norm_l2().powi(2)).sqrt();
        assert!((after - 1.0).abs() < 1e-5);
        // Below the threshold nothing changes.
        let mut c = Tensor::full(Shape::d1(1), 0.5);
        clip_global_norm(&mut [&mut c], 1.0);
        assert_eq!(c.data()[0], 0.5);
    }
}
