//! Matrix data layouts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a logical 2-D matrix is laid out in linear memory.
///
/// This is the object of the paper's *data layout optimization*: for the
/// skewed matrices of an LSTM's fully-connected layers, computing the product
/// under one layout can be substantially faster than under the other even
/// though the mathematics is identical (paper §4.2, Figure 9).
///
/// # Example
///
/// ```
/// use echo_tensor::MatrixLayout;
///
/// let l = MatrixLayout::RowMajor;
/// assert_eq!(l.flip(), MatrixLayout::ColMajor);
/// // Offset of element (row=1, col=2) in a 3x4 matrix:
/// assert_eq!(l.offset(1, 2, 3, 4), 1 * 4 + 2);
/// assert_eq!(l.flip().offset(1, 2, 3, 4), 2 * 3 + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MatrixLayout {
    /// Elements of the same row are contiguous (`A[i][j]` next to `A[i][j+1]`).
    #[default]
    RowMajor,
    /// Elements of the same column are contiguous.
    ColMajor,
}

impl MatrixLayout {
    /// Returns the opposite layout.
    #[must_use]
    pub fn flip(self) -> MatrixLayout {
        match self {
            MatrixLayout::RowMajor => MatrixLayout::ColMajor,
            MatrixLayout::ColMajor => MatrixLayout::RowMajor,
        }
    }

    /// Linear offset of element `(row, col)` in an `rows x cols` matrix
    /// stored in this layout.
    pub fn offset(self, row: usize, col: usize, rows: usize, cols: usize) -> usize {
        match self {
            MatrixLayout::RowMajor => {
                debug_assert!(row < rows && col < cols);
                row * cols + col
            }
            MatrixLayout::ColMajor => {
                debug_assert!(row < rows && col < cols);
                col * rows + row
            }
        }
    }

    /// Stride (in elements) between consecutive elements of the same row.
    pub fn col_stride(self, rows: usize, _cols: usize) -> usize {
        match self {
            MatrixLayout::RowMajor => 1,
            MatrixLayout::ColMajor => rows,
        }
    }

    /// Stride (in elements) between consecutive elements of the same column.
    pub fn row_stride(self, _rows: usize, cols: usize) -> usize {
        match self {
            MatrixLayout::RowMajor => cols,
            MatrixLayout::ColMajor => 1,
        }
    }
}

impl fmt::Display for MatrixLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixLayout::RowMajor => write!(f, "row-major"),
            MatrixLayout::ColMajor => write!(f, "column-major"),
        }
    }
}

/// Layout of a batched RNN input sequence tensor.
///
/// MXNet's default feeds the LSTM a `[T, B, H]` (time-major) tensor; EcoRNN's
/// layout optimization instead uses `[T, H, B]` so that the per-time-step
/// matrix slice is hidden-major, which coalesces GPU accesses across the
/// batch dimension (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SequenceLayout {
    /// `[T, B, H]`: each time-step slice is a `[B, H]` row-major matrix.
    #[default]
    TimeBatchHidden,
    /// `[T, H, B]`: each time-step slice is a `[B, H]` column-major matrix.
    TimeHiddenBatch,
}

impl SequenceLayout {
    /// The per-time-step matrix layout implied by this sequence layout, when
    /// the slice is viewed as a logical `[B, H]` matrix.
    pub fn step_matrix_layout(self) -> MatrixLayout {
        match self {
            SequenceLayout::TimeBatchHidden => MatrixLayout::RowMajor,
            SequenceLayout::TimeHiddenBatch => MatrixLayout::ColMajor,
        }
    }
}

impl fmt::Display for SequenceLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceLayout::TimeBatchHidden => write!(f, "[T, B, H]"),
            SequenceLayout::TimeHiddenBatch => write!(f, "[T, H, B]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        for l in [MatrixLayout::RowMajor, MatrixLayout::ColMajor] {
            assert_eq!(l.flip().flip(), l);
        }
    }

    #[test]
    fn offsets_cover_matrix_exactly_once() {
        for layout in [MatrixLayout::RowMajor, MatrixLayout::ColMajor] {
            let (rows, cols) = (3, 5);
            let mut seen = vec![false; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    let off = layout.offset(r, c, rows, cols);
                    assert!(!seen[off], "{layout} offset {off} visited twice");
                    seen[off] = true;
                }
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn strides_match_offsets() {
        for layout in [MatrixLayout::RowMajor, MatrixLayout::ColMajor] {
            let (rows, cols) = (4, 6);
            let rs = layout.row_stride(rows, cols);
            let cs = layout.col_stride(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(layout.offset(r, c, rows, cols), r * rs + c * cs);
                }
            }
        }
    }

    #[test]
    fn sequence_layout_slice_views() {
        assert_eq!(
            SequenceLayout::TimeBatchHidden.step_matrix_layout(),
            MatrixLayout::RowMajor
        );
        assert_eq!(
            SequenceLayout::TimeHiddenBatch.step_matrix_layout(),
            MatrixLayout::ColMajor
        );
    }
}
