//! Dense `f32` tensors and the numeric kernels used throughout the Echo
//! reproduction.
//!
//! This crate is the *numeric plane* of the system: every value the graph
//! executor computes — activations, gradients, weights — is an
//! [`Tensor`]. The crate deliberately mirrors the small operator zoo an
//! LSTM-RNN training stack needs (GEMM, element-wise maps, reductions,
//! softmax, embedding gather/scatter) rather than trying to be a general
//! array library.
//!
//! # Layout
//!
//! Tensors are always stored contiguously. A [`Tensor`]'s logical layout is
//! row-major over its [`Shape`]; the *data layout optimization* the paper
//! studies (row-major `Y = XWᵀ` vs. column-major `Yᵀ = WXᵀ`) is expressed by
//! the explicit GEMM entry points in [`mod@gemm`] together with the
//! [`MatrixLayout`] type, so a benchmark can run the exact same mathematical
//! product under both layouts.
//!
//! # Example
//!
//! ```
//! use echo_tensor::{Tensor, Shape};
//!
//! let x = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.])?;
//! let y = x.map(|v| v * 2.0);
//! assert_eq!(y.get(&[1, 2])?, 12.0);
//! # Ok::<(), echo_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod gemm;
pub mod gemm_packed;
pub mod init;
pub mod kernels;
pub mod layout;
pub mod matrix;
pub mod policy;
pub mod pool;
pub mod reduce;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use gemm::{gemm, gemm_parallel, Transpose};
pub use gemm_packed::{
    active_micro_kernel, available_micro_kernels, gemm_packed, gemm_packed_parallel,
    gemm_packed_parallel_with, gemm_tiles, set_gemm_tiles, set_micro_kernel, MicroKernel,
};
pub use layout::MatrixLayout;
pub use matrix::{MatView, MatViewMut};
pub use policy::{
    dispatch_gemm, matmul_policy, set_matmul_policy, AutotuneOutcome, MatmulBackend, MatmulPolicy,
};
pub use pool::WorkerPool;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, TensorError>;
