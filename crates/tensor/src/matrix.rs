//! Borrowed 2-D matrix views over linear `f32` storage.
//!
//! GEMM kernels operate on these views so the same buffer can be interpreted
//! under either [`MatrixLayout`] without copying.

use crate::layout::MatrixLayout;

/// An immutable 2-D view: `rows x cols` over a borrowed slice.
///
/// The view is *layout-explicit*: `layout` determines how `(row, col)` maps
/// to a linear offset. Views are how the paper's two GEMM formulations
/// (`Y = XWᵀ` vs `Yᵀ = WXᵀ`) read the same weights and inputs.
#[derive(Debug, Clone, Copy)]
pub struct MatView<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    layout: MatrixLayout,
}

impl<'a> MatView<'a> {
    /// Creates a view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`; a view must cover its backing
    /// storage exactly.
    pub fn new(data: &'a [f32], rows: usize, cols: usize, layout: MatrixLayout) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix view {rows}x{cols} over {} elements",
            data.len()
        );
        MatView {
            data,
            rows,
            cols,
            layout,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The view's layout.
    pub fn layout(&self) -> MatrixLayout {
        self.layout
    }

    /// The underlying storage.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Element at `(row, col)`.
    #[inline(always)]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[self.layout.offset(row, col, self.rows, self.cols)]
    }

    /// Reinterprets the same storage as the transposed matrix (free: only the
    /// layout flag and extents flip).
    #[must_use]
    pub fn t(&self) -> MatView<'a> {
        MatView {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            layout: self.layout.flip(),
        }
    }

    /// Copies the view into a new row-major `Vec`.
    pub fn to_row_major(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(self.get(r, c));
            }
        }
        out
    }
}

/// A mutable 2-D view: `rows x cols` over a borrowed mutable slice.
#[derive(Debug)]
pub struct MatViewMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
    layout: MatrixLayout,
}

impl<'a> MatViewMut<'a> {
    /// Creates a mutable view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(data: &'a mut [f32], rows: usize, cols: usize, layout: MatrixLayout) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix view {rows}x{cols} over {} elements",
            data.len()
        );
        MatViewMut {
            data,
            rows,
            cols,
            layout,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The view's layout.
    pub fn layout(&self) -> MatrixLayout {
        self.layout
    }

    /// Element at `(row, col)`.
    #[inline(always)]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[self.layout.offset(row, col, self.rows, self.cols)]
    }

    /// Writes element `(row, col)`.
    #[inline(always)]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[self.layout.offset(row, col, self.rows, self.cols)] = value;
    }

    /// Adds `value` to element `(row, col)`.
    #[inline(always)]
    pub fn add_assign(&mut self, row: usize, col: usize, value: f32) {
        self.data[self.layout.offset(row, col, self.rows, self.cols)] += value;
    }

    /// The underlying storage, mutably.
    ///
    /// Kernels that write linearly (GEMM) index this buffer directly via the
    /// layout's strides.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.data
    }

    /// Immutable re-borrow of this view.
    pub fn as_view(&self) -> MatView<'_> {
        MatView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            layout: self.layout,
        }
    }

    /// Mutable reinterpretation as the transposed matrix.
    #[must_use]
    pub fn t_mut(self) -> MatViewMut<'a> {
        MatViewMut {
            rows: self.cols,
            cols: self.rows,
            layout: self.layout.flip(),
            data: self.data,
        }
    }

    /// Scales every element by `beta` (used by GEMM's `beta` parameter; a
    /// `beta` of zero overwrites, matching BLAS semantics).
    pub fn scale(&mut self, beta: f32) {
        if beta == 0.0 {
            self.data.fill(0.0);
        } else if beta != 1.0 {
            for v in self.data.iter_mut() {
                *v *= beta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_indexing() {
        let data = vec![1., 2., 3., 4., 5., 6.];
        let m = MatView::new(&data, 2, 3, MatrixLayout::RowMajor);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn col_major_indexing() {
        // Column-major [2x3]: columns are (1,2), (3,4), (5,6).
        let data = vec![1., 2., 3., 4., 5., 6.];
        let m = MatView::new(&data, 2, 3, MatrixLayout::ColMajor);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 2), 5.0);
    }

    #[test]
    fn transpose_is_free_and_consistent() {
        let data: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let m = MatView::new(&data, 3, 4, MatrixLayout::RowMajor);
        let t = m.t();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn to_row_major_round_trip() {
        let data = vec![1., 4., 2., 5., 3., 6.]; // col-major 2x3
        let m = MatView::new(&data, 2, 3, MatrixLayout::ColMajor);
        assert_eq!(m.to_row_major(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn mutable_set_and_scale() {
        let mut data = vec![1.0f32; 6];
        let mut m = MatViewMut::new(&mut data, 2, 3, MatrixLayout::RowMajor);
        m.set(1, 1, 7.0);
        m.scale(2.0);
        assert_eq!(m.get(1, 1), 14.0);
        assert_eq!(m.get(0, 0), 2.0);
        m.scale(0.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "matrix view")]
    fn wrong_length_panics() {
        let data = vec![0.0f32; 5];
        let _ = MatView::new(&data, 2, 3, MatrixLayout::RowMajor);
    }
}
