//! Autotuned GEMM backend dispatch.
//!
//! Every matmul in the training stack funnels through [`dispatch_gemm`],
//! which picks a kernel per problem size under the active
//! [`MatmulPolicy`]. Because all backends are bit-identical (see
//! [`gemm_packed`](crate::gemm_packed)), backend selection is numerically
//! transparent: training losses and gradients do not depend on the
//! policy, the autotune outcome, or the worker count — a property the
//! policy-determinism integration test enforces end to end.
//!
//! The `Auto` policy is seeded the way `echo-rnn`'s plan autotuner seeds
//! execution plans (run the candidates once, keep the winner): the first
//! time a large-tier GEMM is dispatched, a one-shot microbenchmark races
//! the blocked kernel against the packed kernel on an LSTM-shaped
//! problem and caches the winner for the rest of the process. Set
//! `ECHO_MATMUL_AUTOTUNE=0` to skip the measurement and take the
//! deterministic static choice (packed); set `ECHO_MATMUL_POLICY` to
//! `naive`, `blocked`, `packed`, or `auto` to pin the policy at startup.

use crate::gemm::{gemm, gemm_blocked};
use crate::gemm_packed::{
    self, active_micro_kernel, available_micro_kernels, gemm_packed_parallel,
    gemm_packed_parallel_with, gemm_tiles, pin_micro_kernel_if_unset, set_gemm_tiles, MicroKernel,
};
use crate::layout::MatrixLayout;
use crate::matrix::{MatView, MatViewMut};
use crate::pool;
use crate::Result;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A concrete GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatmulBackend {
    /// Scalar i-k-j triple loop (`gemm`).
    Naive,
    /// Cache-blocked serial kernel (`gemm_blocked`).
    Blocked,
    /// Packed register-blocked kernel, row-banded on the worker pool
    /// (`gemm_packed_parallel`).
    PackedParallel,
}

impl MatmulBackend {
    /// Stable lowercase name (used in env vars, benchmark JSON, reports).
    pub fn name(self) -> &'static str {
        match self {
            MatmulBackend::Naive => "naive",
            MatmulBackend::Blocked => "blocked",
            MatmulBackend::PackedParallel => "packed",
        }
    }
}

/// How [`dispatch_gemm`] chooses its backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatmulPolicy {
    /// Pick per problem size; the large tier is seeded by a one-shot
    /// microbenchmark (unless `ECHO_MATMUL_AUTOTUNE=0`).
    #[default]
    Auto,
    /// Always use the given backend (packed falls back to blocked for
    /// column-major outputs, which is bit-identical anyway).
    Fixed(MatmulBackend),
}

impl MatmulPolicy {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MatmulPolicy::Auto => "auto",
            MatmulPolicy::Fixed(b) => b.name(),
        }
    }
}

/// Below this flop count (2·m·k·n) the pack/band overhead dominates and
/// the naive kernel wins.
const SMALL_FLOPS: usize = 1 << 14; // e.g. 16×16×16
/// At or above this flop count the packed tier (and the one-shot
/// autotune) kicks in. Chosen well above every debug-mode unit-test shape
/// so tests never pay for the microbenchmark.
const LARGE_FLOPS: usize = 1 << 22; // e.g. 64×128×256

const POLICY_UNSET: u8 = u8::MAX;
/// Runtime policy override; `POLICY_UNSET` defers to the env default.
static POLICY_OVERRIDE: AtomicU8 = AtomicU8::new(POLICY_UNSET);

fn encode(p: MatmulPolicy) -> u8 {
    match p {
        MatmulPolicy::Auto => 0,
        MatmulPolicy::Fixed(MatmulBackend::Naive) => 1,
        MatmulPolicy::Fixed(MatmulBackend::Blocked) => 2,
        MatmulPolicy::Fixed(MatmulBackend::PackedParallel) => 3,
    }
}

fn decode(v: u8) -> MatmulPolicy {
    match v {
        1 => MatmulPolicy::Fixed(MatmulBackend::Naive),
        2 => MatmulPolicy::Fixed(MatmulBackend::Blocked),
        3 => MatmulPolicy::Fixed(MatmulBackend::PackedParallel),
        _ => MatmulPolicy::Auto,
    }
}

fn env_default() -> MatmulPolicy {
    static DEFAULT: OnceLock<MatmulPolicy> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("ECHO_MATMUL_POLICY")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "naive" => MatmulPolicy::Fixed(MatmulBackend::Naive),
            "blocked" => MatmulPolicy::Fixed(MatmulBackend::Blocked),
            "packed" => MatmulPolicy::Fixed(MatmulBackend::PackedParallel),
            _ => MatmulPolicy::Auto,
        }
    })
}

/// The policy [`dispatch_gemm`] currently applies.
pub fn matmul_policy() -> MatmulPolicy {
    match POLICY_OVERRIDE.load(Ordering::Relaxed) {
        POLICY_UNSET => env_default(),
        v => decode(v),
    }
}

/// Overrides the process-wide matmul policy (tests, benchmarks).
pub fn set_matmul_policy(policy: MatmulPolicy) {
    POLICY_OVERRIDE.store(encode(policy), Ordering::Relaxed);
}

/// Outcome of the one-shot large-tier microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct AutotuneOutcome {
    /// Winner used for the large tier under `Auto`.
    pub chosen: MatmulBackend,
    /// Blocked-kernel time on the probe shape, nanoseconds (0 if skipped).
    pub blocked_ns: u64,
    /// Packed-kernel time on the probe shape, nanoseconds (0 if skipped).
    pub packed_ns: u64,
    /// Probe shape `(m, k, n)`.
    pub shape: (usize, usize, usize),
    /// Whether the times were actually measured (`ECHO_MATMUL_AUTOTUNE`
    /// not `0`) or the static fallback was taken.
    pub measured: bool,
    /// Micro-kernel variant pinned for the packed backend (see
    /// [`active_micro_kernel`]).
    pub kernel: MicroKernel,
    /// `(KC, MC)` tile sizes in effect after autotuning.
    pub tiles: (usize, usize),
    /// Whether the tile race actually ran (release builds with autotune
    /// enabled and no `ECHO_GEMM_TILES` pin).
    pub tiles_measured: bool,
}

static AUTOTUNE: OnceLock<AutotuneOutcome> = OnceLock::new();

/// The autotune outcome, if the large tier has been exercised yet.
pub fn autotune_outcome() -> Option<AutotuneOutcome> {
    AUTOTUNE.get().copied()
}

/// Runs (or fetches) the one-shot microbenchmark that seeds the large
/// tier. Probe shape is one LSTM gate block from the paper's word-LM
/// config scaled down to keep the probe under ~10 ms even in debug mode.
fn large_tier_backend() -> MatmulBackend {
    AUTOTUNE
        .get_or_init(|| {
            let enabled = std::env::var("ECHO_MATMUL_AUTOTUNE")
                .map(|v| v.trim() != "0")
                .unwrap_or(true);
            let (m, k, n) = (32, 128, 256);
            if !enabled {
                return AutotuneOutcome {
                    chosen: MatmulBackend::PackedParallel,
                    blocked_ns: 0,
                    packed_ns: 0,
                    shape: (m, k, n),
                    measured: false,
                    kernel: active_micro_kernel(),
                    tiles: gemm_tiles(),
                    tiles_measured: false,
                };
            }
            let a: Vec<f32> = (0..m * k).map(|v| (v % 17) as f32 * 0.25 - 2.0).collect();
            let b: Vec<f32> = (0..k * n).map(|v| (v % 13) as f32 * 0.5 - 3.0).collect();
            let av = MatView::new(&a, m, k, MatrixLayout::RowMajor);
            let bv = MatView::new(&b, k, n, MatrixLayout::RowMajor);
            let ways = pool::global().num_threads();
            let time = |f: &dyn Fn(&mut MatViewMut<'_>)| {
                let mut c = vec![0.0f32; m * n];
                let mut cv = MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor);
                f(&mut cv); // warm-up (also warms pack buffers / pool)
                let reps = 3;
                let start = std::time::Instant::now();
                for _ in 0..reps {
                    f(&mut cv);
                }
                (start.elapsed().as_nanos() / reps as u128) as u64
            };
            // The micro-kernel and tile races only run in release builds:
            // debug timings are meaningless and every variant/tile is
            // bit-identical anyway, so debug runs just take the detected
            // kernel and compiled defaults.
            let tiles_measured = !cfg!(debug_assertions) && tune_kernel_and_tiles(av, bv, ways);
            let blocked_ns = time(&|c| {
                gemm_blocked(1.0, av, bv, 0.0, c).expect("probe gemm");
            });
            let packed_ns = time(&|c| {
                gemm_packed_parallel(1.0, av, bv, 0.0, c, ways).expect("probe gemm");
            });
            let chosen = if packed_ns <= blocked_ns {
                MatmulBackend::PackedParallel
            } else {
                MatmulBackend::Blocked
            };
            AutotuneOutcome {
                chosen,
                blocked_ns,
                packed_ns,
                shape: (m, k, n),
                measured: true,
                kernel: active_micro_kernel(),
                tiles: gemm_tiles(),
                tiles_measured,
            }
        })
        .chosen
}

/// One-shot micro-kernel + `(KC, MC)` race for the packed backend.
///
/// Every candidate is bit-identical (see `gemm_packed`), so this is purely
/// a speed decision: the fastest variant is pinned process-wide via
/// [`pin_micro_kernel_if_unset`] (user/test overrides and
/// `ECHO_GEMM_KERNEL` always win) and the fastest tile pair installed via
/// [`set_gemm_tiles`] (subordinate to `ECHO_GEMM_TILES`). Returns whether
/// the tile race ran.
fn tune_kernel_and_tiles(av: MatView<'_>, bv: MatView<'_>, ways: usize) -> bool {
    let (m, n) = (av.rows(), bv.cols());
    let time_packed = |kernel: MicroKernel, kc: usize, mc: usize| {
        let mut c = vec![0.0f32; m * n];
        let mut cv = MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor);
        gemm_packed_parallel_with(1.0, av, bv, 0.0, &mut cv, ways, kernel, kc, mc)
            .expect("probe gemm");
        let reps = 3;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            gemm_packed_parallel_with(1.0, av, bv, 0.0, &mut cv, ways, kernel, kc, mc)
                .expect("probe gemm");
        }
        (start.elapsed().as_nanos() / reps as u128) as u64
    };

    if gemm_packed::env_kernel().is_none() {
        let (kc0, mc0) = gemm_tiles();
        let winner = available_micro_kernels()
            .into_iter()
            .map(|kernel| (time_packed(kernel, kc0, mc0), kernel))
            .min_by_key(|&(ns, _)| ns)
            .map(|(_, kernel)| kernel)
            .unwrap_or(MicroKernel::Scalar);
        pin_micro_kernel_if_unset(winner);
    }

    if gemm_packed::env_tiles().is_some() {
        return false;
    }
    let kernel = active_micro_kernel();
    let best = [(256usize, 128usize), (128, 64), (256, 64), (512, 128)]
        .into_iter()
        .map(|(kc, mc)| (time_packed(kernel, kc, mc), kc, mc))
        .min_by_key(|&(ns, _, _)| ns);
    if let Some((_, kc, mc)) = best {
        set_gemm_tiles(kc, mc);
    }
    true
}

/// The backend [`dispatch_gemm`] would use for an `m × k × n` problem
/// under the current policy.
pub fn backend_for(m: usize, k: usize, n: usize) -> MatmulBackend {
    match matmul_policy() {
        MatmulPolicy::Fixed(b) => b,
        MatmulPolicy::Auto => {
            let flops = 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(n);
            if flops < SMALL_FLOPS {
                MatmulBackend::Naive
            } else if flops < LARGE_FLOPS {
                MatmulBackend::Blocked
            } else {
                large_tier_backend()
            }
        }
    }
}

/// Policy-routed GEMM: `C = alpha*A*B + beta*C`.
///
/// This is the single entry point the training stack uses
/// ([`Tensor::matmul`](crate::Tensor::matmul) and everything above it).
/// The packed backend requires a row-major `C`; for column-major outputs
/// it falls back to the blocked kernel, which is bit-identical.
///
/// # Errors
///
/// Returns [`TensorError::GemmDimension`](crate::TensorError::GemmDimension)
/// when the operand shapes do not line up.
pub fn dispatch_gemm(
    alpha: f32,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f32,
    c: &mut MatViewMut<'_>,
) -> Result<()> {
    let backend = backend_for(a.rows(), a.cols(), b.cols());
    match backend {
        MatmulBackend::Naive => gemm(alpha, a, b, beta, c),
        MatmulBackend::Blocked => gemm_blocked(alpha, a, b, beta, c),
        MatmulBackend::PackedParallel => {
            if c.layout() == MatrixLayout::RowMajor {
                gemm_packed_parallel(alpha, a, b, beta, c, pool::global().num_threads())
            } else {
                gemm_blocked(alpha, a, b, beta, c)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_encoding_round_trips() {
        for p in [
            MatmulPolicy::Auto,
            MatmulPolicy::Fixed(MatmulBackend::Naive),
            MatmulPolicy::Fixed(MatmulBackend::Blocked),
            MatmulPolicy::Fixed(MatmulBackend::PackedParallel),
        ] {
            assert_eq!(decode(encode(p)), p);
        }
    }

    // One test, not several: the policy override is process-global state
    // and the harness runs #[test]s concurrently.
    #[test]
    fn policy_tiers_and_overrides() {
        set_matmul_policy(MatmulPolicy::Auto);
        assert_eq!(backend_for(4, 4, 4), MatmulBackend::Naive);
        assert_eq!(backend_for(32, 64, 64), MatmulBackend::Blocked);
        // Large tier resolves to the autotuned winner — one of the two
        // candidates, never naive.
        let large = backend_for(64, 512, 2048);
        assert_ne!(large, MatmulBackend::Naive);
        assert!(autotune_outcome().is_some());

        set_matmul_policy(MatmulPolicy::Fixed(MatmulBackend::Blocked));
        assert_eq!(backend_for(1, 1, 1), MatmulBackend::Blocked);
        assert_eq!(backend_for(999, 999, 999), MatmulBackend::Blocked);
        set_matmul_policy(MatmulPolicy::Auto);
    }
}
