//! The persistent shared worker pool behind every parallel kernel.
//!
//! The first parallel GEMM in this repo (`gemm_parallel`) spawned fresh
//! scoped threads on *every call* — fine for a benchmark, ruinous on a
//! training hot path where an LSTM time step issues four GEMMs. This module
//! replaces per-call spawning with one process-wide pool: workers are
//! spawned lazily on first use, sized from [`std::thread::available_parallelism`]
//! (override with `ECHO_NUM_THREADS`), and fed short-lived band jobs over a
//! shared crossbeam channel. GEMM, the element-wise tensor kernels and the
//! softmax/layer-norm row kernels all submit to the same pool, so `K`
//! data-parallel model replicas contend for one fixed set of threads
//! instead of oversubscribing the host with `K × cores` transient spawns.
//!
//! # Dispatch without allocation
//!
//! The original dispatch path boxed every band as a `Box<dyn FnOnce>` and
//! collected them into a fresh `Vec` per call — several heap allocations on
//! every GEMM of every LSTM time step. [`WorkerPool::run_indexed`] replaces
//! that for the hot paths: the caller hands over one `&dyn Fn(usize)` plus a
//! count, a single stack-allocated [`IndexedBatch`] travels through the
//! channel as a raw pointer, and workers *claim indices* from an atomic
//! cursor instead of receiving one boxed closure each. Steady-state plan
//! execution therefore launches kernels with zero dispatch allocations.
//!
//! # Determinism
//!
//! The pool runs *jobs*, and every caller in this crate partitions work so
//! that each output element is produced by exactly one job with a fixed
//! serial loop inside it. Scheduling order therefore cannot change any
//! floating-point result: the bit-exactness contract of the data-parallel
//! trainer extends to "any worker count" (see `DESIGN.md`).

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work queued on the pool. Tasks are `'static` internally; the
/// scoped-lifetime APIs ([`WorkerPool::run`], [`WorkerPool::run_indexed`])
/// guarantee completion before borrowed data can die.
enum Task {
    /// A boxed one-shot closure ([`WorkerPool::run`]).
    Owned(Box<dyn FnOnce() + Send + 'static>),
    /// A ticket pointing at a caller-stack [`IndexedBatch`]
    /// ([`WorkerPool::run_indexed`]); the receiving worker claims indices
    /// from the batch's cursor until it is exhausted.
    Shared(SharedBatch),
}

/// Raw pointer to a stack-allocated [`IndexedBatch`], made `Send` so it can
/// travel through the channel.
///
/// SAFETY: `run_indexed` blocks on the batch latch until every ticket it
/// sent has been consumed *and completed*, so the pointee strictly outlives
/// every `SharedBatch` referring to it.
struct SharedBatch(*const IndexedBatch);
unsafe impl Send for SharedBatch {}

/// One `run_indexed` call's worth of work: an erased closure, an atomic
/// index cursor, and a completion latch counting *tickets* (not indices).
struct IndexedBatch {
    /// The caller's `&dyn Fn(usize)` with its lifetime erased; only
    /// dereferenced while `run_indexed` is blocked in this stack frame.
    f: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    count: usize,
    latch: Latch,
}

// SAFETY: `f` points at a `Sync` closure and every other field is itself
// thread-safe, so workers may drain the batch concurrently.
unsafe impl Sync for IndexedBatch {}

impl IndexedBatch {
    /// Claims and runs indices until the cursor is exhausted. Panics inside
    /// the closure are caught and recorded on the latch so the submitting
    /// caller — not a pool worker — reports them.
    fn claim(&self) {
        // SAFETY: see `SharedBatch` — the owning `run_indexed` frame is
        // still blocked on the latch, so the closure is alive.
        let f = unsafe { &*self.f };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                return;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.latch.poisoned.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Completion latch for one [`WorkerPool::run`] batch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn complete(&self, panicked: bool) {
        if panicked {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        let mut remaining = self.remaining.lock().expect("latch mutex");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch mutex") == 0
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch mutex");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch mutex");
        }
    }
}

thread_local! {
    /// Set inside pool workers (and while a caller is helping drain the
    /// queue) so nested `run` calls degrade to inline execution instead of
    /// blocking a worker on a latch.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A raw `*mut f32` wrapper so band kernels can hand disjoint slices of one
/// output buffer to `run_indexed` closures. Each call site must guarantee
/// its bands never overlap.
pub(crate) struct SendPtr(pub *mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// A persistent pool of kernel worker threads fed over a shared channel.
///
/// See [`global`] for the process-wide instance every kernel uses; direct
/// construction ([`WorkerPool::with_threads`]) exists for tests.
pub struct WorkerPool {
    tx: Sender<Task>,
    rx: Receiver<Task>,
    /// Total parallelism: spawned workers + the calling thread.
    threads: usize,
    /// Jobs executed since the pool was built (workers + helping callers).
    executed: Arc<AtomicUsize>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Runs one received task (worker loop and help-drain share this).
fn execute(task: Task) {
    match task {
        Task::Owned(f) => f(),
        Task::Shared(batch) => {
            // SAFETY: the submitting `run_indexed` frame waits on this
            // batch's latch for exactly as many completions as tickets it
            // sent, so the pointee is alive until we call `complete`.
            let batch = unsafe { &*batch.0 };
            batch.claim();
            batch.latch.complete(false);
        }
    }
}

impl WorkerPool {
    /// Builds a pool with `threads` total lanes of parallelism (the
    /// calling thread counts as one; `threads - 1` workers are spawned).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Task>();
        let executed = Arc::new(AtomicUsize::new(0));
        for i in 1..threads {
            let worker_rx = rx.clone();
            let counter = executed.clone();
            std::thread::Builder::new()
                .name(format!("echo-kernel-{i}"))
                .spawn(move || {
                    IN_POOL_TASK.with(|f| f.set(true));
                    // Exits when every Sender is gone — i.e. never for the
                    // global pool, which is intentional: kernel workers
                    // live for the life of the process.
                    for task in worker_rx.iter() {
                        execute(task);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn kernel worker");
        }
        WorkerPool {
            tx,
            rx,
            threads,
            executed,
        }
    }

    /// Total parallelism (spawned workers + the calling thread).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Jobs executed on the pool so far (observability/testing).
    pub fn jobs_executed(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }

    /// Runs every job to completion, using the pool's workers plus the
    /// calling thread, and returns once all of them have finished.
    ///
    /// Jobs may borrow from the caller's stack: completion is awaited
    /// before returning, so no job can outlive the borrowed data. Nested
    /// calls (a job that itself calls `run`) execute inline rather than
    /// re-entering the queue.
    ///
    /// Prefer [`WorkerPool::run_indexed`] on hot paths — this entry point
    /// boxes every job.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked (after all jobs have finished).
    pub fn run<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let count = jobs.len();
        if count == 0 {
            return;
        }
        if count == 1 || self.threads == 1 || IN_POOL_TASK.with(|f| f.get()) {
            for job in jobs {
                job();
            }
            return;
        }

        let latch = Arc::new(Latch::new(count));
        for job in jobs {
            let latch = Arc::clone(&latch);
            let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                latch.complete(outcome.is_err());
            });
            // SAFETY: the task is only extended to `'static` so it can
            // travel through the channel; `latch.wait()` below blocks this
            // function until every submitted task has run to completion,
            // so no borrow inside `job` outlives `'scope`. The wrapper
            // catches panics, so a panicking job still completes the latch
            // instead of poisoning a worker.
            let wrapped: Box<dyn FnOnce() + Send + 'static> = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'scope>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(wrapped)
            };
            self.tx
                .send(Task::Owned(wrapped))
                .expect("pool receiver alive");
        }
        self.drain_until(&latch);
        assert!(
            !latch.poisoned.load(Ordering::Relaxed),
            "worker-pool job panicked"
        );
    }

    /// Runs `f(0), f(1), …, f(count - 1)`, each index exactly once, using
    /// the pool's workers plus the calling thread — without allocating.
    ///
    /// One stack-allocated batch descriptor is shared by every lane;
    /// workers claim indices from an atomic cursor. The closure may borrow
    /// from the caller's stack: the call blocks until every index has run
    /// *and* every worker ticket has been consumed, so neither the closure
    /// nor the descriptor can be observed after return. Nested calls (from
    /// inside a pool job) degrade to an inline serial loop.
    ///
    /// Indices are claimed in arbitrary order across lanes — callers must
    /// partition work so each output element is written by exactly one
    /// index (the same contract as [`WorkerPool::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `f` panicked for any index (after the batch has drained).
    pub fn run_indexed(&self, count: usize, f: &(dyn Fn(usize) + Sync)) {
        if count == 0 {
            return;
        }
        if count == 1 || self.threads == 1 || IN_POOL_TASK.with(|flag| flag.get()) {
            for i in 0..count {
                f(i);
            }
            return;
        }

        // One ticket per worker lane that could usefully help; stale
        // tickets (batch already drained) complete immediately, so the
        // latch still converges.
        let tickets = (self.threads - 1).min(count);
        // SAFETY: the lifetime of `f` is erased only so the pointer can sit
        // in a channel message; `latch.wait()` in `drain_until` does not
        // return until all `tickets` completions have arrived, and a ticket
        // only completes after its final (failed) cursor claim — so no
        // worker can touch `batch` or `f` after this frame returns.
        let f: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let batch = IndexedBatch {
            f,
            next: AtomicUsize::new(0),
            count,
            latch: Latch::new(tickets),
        };
        for _ in 0..tickets {
            self.tx
                .send(Task::Shared(SharedBatch(&batch)))
                .expect("pool receiver alive");
        }
        // The caller is a lane too: claim indices alongside the workers.
        IN_POOL_TASK.with(|flag| flag.set(true));
        batch.claim();
        IN_POOL_TASK.with(|flag| flag.set(false));
        self.drain_until(&batch.latch);
        assert!(
            !batch.latch.poisoned.load(Ordering::Relaxed),
            "worker-pool job panicked"
        );
    }

    /// Helps drain the shared queue until `latch` completes, then waits.
    fn drain_until(&self, latch: &Latch) {
        // Help drain the queue while waiting; the caller may execute its
        // own jobs or another batch's — both make progress.
        IN_POOL_TASK.with(|f| f.set(true));
        while !latch.is_done() {
            match self.rx.try_recv() {
                Ok(task) => {
                    execute(task);
                    self.executed.fetch_add(1, Ordering::Relaxed);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        IN_POOL_TASK.with(|f| f.set(false));
        latch.wait();
    }

    /// Splits `0..total` into at most `max_bands` contiguous ranges of at
    /// least `min_per_band` items each and runs `f(start, end)` on the
    /// pool for every range.
    ///
    /// Each index lands in exactly one range, so element-wise kernels
    /// parallelized this way are bit-identical to their serial form for
    /// every band count.
    pub fn for_each_band(
        &self,
        total: usize,
        min_per_band: usize,
        f: impl Fn(usize, usize) + Sync,
    ) {
        let bands = band_count(total, min_per_band, self.threads);
        if bands <= 1 {
            if total > 0 {
                f(0, total);
            }
            return;
        }
        let per = total.div_ceil(bands);
        self.run_indexed(bands, &|b| {
            let start = b * per;
            let end = ((b + 1) * per).min(total);
            if start < end {
                f(start, end);
            }
        });
    }
}

/// Number of bands `total` items split into, given a per-band minimum and
/// a lane cap. At least 1, at most `max_bands`.
pub fn band_count(total: usize, min_per_band: usize, max_bands: usize) -> usize {
    if total == 0 {
        return 1;
    }
    (total / min_per_band.max(1)).clamp(1, max_bands.max(1))
}

/// The process-wide pool. Lazily built on first use; sized from
/// `ECHO_NUM_THREADS` if set, else [`std::thread::available_parallelism`].
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("ECHO_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        WorkerPool::with_threads(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkerPool::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = hits
            .iter()
            .map(|h| {
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn run_indexed_hits_every_index_once() {
        let pool = WorkerPool::with_threads(4);
        for count in [1usize, 2, 3, 64, 257] {
            let hits: Vec<AtomicUsize> = (0..count).map(|_| AtomicUsize::new(0)).collect();
            pool.run_indexed(count, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn run_indexed_nested_degrades_to_inline() {
        let pool = WorkerPool::with_threads(2);
        let outer = AtomicUsize::new(0);
        pool.run_indexed(4, &|_| {
            let inner = AtomicUsize::new(0);
            global().run_indexed(3, &|_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(inner.load(Ordering::Relaxed), 3);
            outer.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
    }

    #[test]
    #[should_panic(expected = "worker-pool job panicked")]
    fn run_indexed_panic_is_propagated_not_deadlocked() {
        let pool = WorkerPool::with_threads(2);
        pool.run_indexed(4, &|i| {
            if i == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn bands_cover_range_disjointly() {
        let pool = WorkerPool::with_threads(3);
        let total = 1000;
        let marks: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_band(total, 10, |start, end| {
            for m in &marks[start..end] {
                m.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_run_degrades_to_inline() {
        let pool = WorkerPool::with_threads(2);
        let outer_done = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let counter = &outer_done;
                Box::new(move || {
                    // A nested batch must not deadlock the pool.
                    let inner = AtomicUsize::new(0);
                    let inner_jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                        .map(|_| {
                            let inner = &inner;
                            Box::new(move || {
                                inner.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    global().run(inner_jobs);
                    assert_eq!(inner.load(Ordering::Relaxed), 3);
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(outer_done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn band_count_respects_bounds() {
        assert_eq!(band_count(0, 8, 4), 1);
        assert_eq!(band_count(7, 8, 4), 1);
        assert_eq!(band_count(16, 8, 4), 2);
        assert_eq!(band_count(1000, 8, 4), 4);
    }

    #[test]
    #[should_panic(expected = "worker-pool job panicked")]
    fn job_panic_is_propagated_not_deadlocked() {
        let pool = WorkerPool::with_threads(2);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
    }
}
