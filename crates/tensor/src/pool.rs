//! The persistent shared worker pool behind every parallel kernel.
//!
//! The first parallel GEMM in this repo (`gemm_parallel`) spawned fresh
//! scoped threads on *every call* — fine for a benchmark, ruinous on a
//! training hot path where an LSTM time step issues four GEMMs. This module
//! replaces per-call spawning with one process-wide pool: workers are
//! spawned lazily on first use, sized from [`std::thread::available_parallelism`]
//! (override with `ECHO_NUM_THREADS`), and fed short-lived band jobs over a
//! shared crossbeam channel. GEMM, the element-wise tensor kernels and the
//! softmax/layer-norm row kernels all submit to the same pool, so `K`
//! data-parallel model replicas contend for one fixed set of threads
//! instead of oversubscribing the host with `K × cores` transient spawns.
//!
//! # Determinism
//!
//! The pool runs *jobs*, and every caller in this crate partitions work so
//! that each output element is produced by exactly one job with a fixed
//! serial loop inside it. Scheduling order therefore cannot change any
//! floating-point result: the bit-exactness contract of the data-parallel
//! trainer extends to "any worker count" (see `DESIGN.md`).

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work queued on the pool. Tasks are `'static` internally; the
/// scoped-lifetime API ([`WorkerPool::run`]) guarantees completion before
/// borrowed data can die.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch for one [`WorkerPool::run`] batch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn complete(&self, panicked: bool) {
        if panicked {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        let mut remaining = self.remaining.lock().expect("latch mutex");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch mutex") == 0
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch mutex");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch mutex");
        }
    }
}

thread_local! {
    /// Set inside pool workers (and while a caller is helping drain the
    /// queue) so nested `run` calls degrade to inline execution instead of
    /// blocking a worker on a latch.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent pool of kernel worker threads fed over a shared channel.
///
/// See [`global`] for the process-wide instance every kernel uses; direct
/// construction ([`WorkerPool::with_threads`]) exists for tests.
pub struct WorkerPool {
    tx: Sender<Task>,
    rx: Receiver<Task>,
    /// Total parallelism: spawned workers + the calling thread.
    threads: usize,
    /// Jobs executed since the pool was built (workers + helping callers).
    executed: Arc<AtomicUsize>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Builds a pool with `threads` total lanes of parallelism (the
    /// calling thread counts as one; `threads - 1` workers are spawned).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Task>();
        let executed = Arc::new(AtomicUsize::new(0));
        for i in 1..threads {
            let worker_rx = rx.clone();
            let counter = executed.clone();
            std::thread::Builder::new()
                .name(format!("echo-kernel-{i}"))
                .spawn(move || {
                    IN_POOL_TASK.with(|f| f.set(true));
                    // Exits when every Sender is gone — i.e. never for the
                    // global pool, which is intentional: kernel workers
                    // live for the life of the process.
                    for task in worker_rx.iter() {
                        task();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn kernel worker");
        }
        WorkerPool {
            tx,
            rx,
            threads,
            executed,
        }
    }

    /// Total parallelism (spawned workers + the calling thread).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Jobs executed on the pool so far (observability/testing).
    pub fn jobs_executed(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }

    /// Runs every job to completion, using the pool's workers plus the
    /// calling thread, and returns once all of them have finished.
    ///
    /// Jobs may borrow from the caller's stack: completion is awaited
    /// before returning, so no job can outlive the borrowed data. Nested
    /// calls (a job that itself calls `run`) execute inline rather than
    /// re-entering the queue.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked (after all jobs have finished).
    pub fn run<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let count = jobs.len();
        if count == 0 {
            return;
        }
        if count == 1 || self.threads == 1 || IN_POOL_TASK.with(|f| f.get()) {
            for job in jobs {
                job();
            }
            return;
        }

        let latch = Arc::new(Latch::new(count));
        for job in jobs {
            let latch = Arc::clone(&latch);
            let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                latch.complete(outcome.is_err());
            });
            // SAFETY: the task is only extended to `'static` so it can
            // travel through the channel; `latch.wait()` below blocks this
            // function until every submitted task has run to completion,
            // so no borrow inside `job` outlives `'scope`. The wrapper
            // catches panics, so a panicking job still completes the latch
            // instead of poisoning a worker.
            let wrapped: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(wrapped) };
            self.tx.send(wrapped).expect("pool receiver alive");
        }

        // Help drain the queue while waiting; the caller may execute its
        // own jobs or another batch's — both make progress.
        IN_POOL_TASK.with(|f| f.set(true));
        while !latch.is_done() {
            match self.rx.try_recv() {
                Ok(task) => {
                    task();
                    self.executed.fetch_add(1, Ordering::Relaxed);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        IN_POOL_TASK.with(|f| f.set(false));
        latch.wait();
        assert!(
            !latch.poisoned.load(Ordering::Relaxed),
            "worker-pool job panicked"
        );
    }

    /// Splits `0..total` into at most `max_bands` contiguous ranges of at
    /// least `min_per_band` items each and runs `f(start, end)` on the
    /// pool for every range.
    ///
    /// Each index lands in exactly one range, so element-wise kernels
    /// parallelized this way are bit-identical to their serial form for
    /// every band count.
    pub fn for_each_band(
        &self,
        total: usize,
        min_per_band: usize,
        f: impl Fn(usize, usize) + Sync,
    ) {
        let bands = band_count(total, min_per_band, self.threads);
        if bands <= 1 {
            if total > 0 {
                f(0, total);
            }
            return;
        }
        let per = total.div_ceil(bands);
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..bands)
            .map(|b| {
                let start = b * per;
                let end = ((b + 1) * per).min(total);
                Box::new(move || f(start, end)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run(jobs);
    }
}

/// Number of bands `total` items split into, given a per-band minimum and
/// a lane cap. At least 1, at most `max_bands`.
pub fn band_count(total: usize, min_per_band: usize, max_bands: usize) -> usize {
    if total == 0 {
        return 1;
    }
    (total / min_per_band.max(1)).clamp(1, max_bands.max(1))
}

/// The process-wide pool. Lazily built on first use; sized from
/// `ECHO_NUM_THREADS` if set, else [`std::thread::available_parallelism`].
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("ECHO_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        WorkerPool::with_threads(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkerPool::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = hits
            .iter()
            .map(|h| {
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn bands_cover_range_disjointly() {
        let pool = WorkerPool::with_threads(3);
        let total = 1000;
        let marks: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_band(total, 10, |start, end| {
            for m in &marks[start..end] {
                m.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_run_degrades_to_inline() {
        let pool = WorkerPool::with_threads(2);
        let outer_done = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let counter = &outer_done;
                Box::new(move || {
                    // A nested batch must not deadlock the pool.
                    let inner = AtomicUsize::new(0);
                    let inner_jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                        .map(|_| {
                            let inner = &inner;
                            Box::new(move || {
                                inner.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    global().run(inner_jobs);
                    assert_eq!(inner.load(Ordering::Relaxed), 3);
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(outer_done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn band_count_respects_bounds() {
        assert_eq!(band_count(0, 8, 4), 1);
        assert_eq!(band_count(7, 8, 4), 1);
        assert_eq!(band_count(16, 8, 4), 2);
        assert_eq!(band_count(1000, 8, 4), 4);
    }

    #[test]
    #[should_panic(expected = "worker-pool job panicked")]
    fn job_panic_is_propagated_not_deadlocked() {
        let pool = WorkerPool::with_threads(2);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
    }
}
