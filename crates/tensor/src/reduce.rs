//! Reductions over tensors.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Sums over `axis`, producing a tensor with that axis removed.
///
/// # Errors
///
/// Returns [`TensorError::InvalidAxis`] when `axis >= rank`.
pub fn sum_axis(x: &Tensor, axis: usize) -> Result<Tensor> {
    let rank = x.shape().rank();
    if axis >= rank {
        return Err(TensorError::InvalidAxis { axis, rank });
    }
    let dims = x.shape().dims();
    let outer: usize = dims[..axis].iter().product();
    let mid = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let mut out = Tensor::zeros(x.shape().without_axis(axis));
    for o in 0..outer {
        for m in 0..mid {
            let base = (o * mid + m) * inner;
            let out_base = o * inner;
            for i in 0..inner {
                out.data_mut()[out_base + i] += x.data()[base + i];
            }
        }
    }
    Ok(out)
}

/// Mean over `axis` (see [`sum_axis`]).
///
/// # Errors
///
/// Returns [`TensorError::InvalidAxis`] when `axis >= rank`.
pub fn mean_axis(x: &Tensor, axis: usize) -> Result<Tensor> {
    let n = x.shape().dim(axis) as f32;
    let mut s = sum_axis(x, axis)?;
    s.scale_inplace(1.0 / n);
    Ok(s)
}

/// Index of the maximum element in each row of the flattened matrix view.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for a tensor with zero columns.
pub fn argmax_rows(x: &Tensor) -> Result<Vec<usize>> {
    let (rows, cols) = x.shape().as_matrix();
    if cols == 0 {
        return Err(TensorError::Empty { op: "argmax_rows" });
    }
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Broadcast-adds a `[cols]` bias to every row of the flattened matrix.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias.len()` is not the column
/// count.
pub fn add_bias_rows(x: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (rows, cols) = x.shape().as_matrix();
    if bias.len() != cols {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().clone(),
            right: bias.shape().clone(),
            op: "add_bias_rows",
        });
    }
    for r in 0..rows {
        let row = &mut x.data_mut()[r * cols..(r + 1) * cols];
        for (v, &b) in row.iter_mut().zip(bias.data()) {
            *v += b;
        }
    }
    Ok(())
}

/// Sums each column of the flattened matrix into a `[cols]` tensor (the
/// gradient of [`add_bias_rows`]).
#[must_use]
pub fn sum_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = x.shape().as_matrix();
    let mut out = Tensor::zeros(Shape::d1(cols));
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        for (o, &v) in out.data_mut().iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_axis_matches_manual() {
        let x = Tensor::from_fn(Shape::d3(2, 3, 2), |i| i as f32);
        let s0 = sum_axis(&x, 0).unwrap();
        assert_eq!(s0.shape(), &Shape::d2(3, 2));
        assert_eq!(s0.get(&[0, 0]).unwrap(), 0.0 + 6.0);
        let s1 = sum_axis(&x, 1).unwrap();
        assert_eq!(s1.shape(), &Shape::d2(2, 2));
        assert_eq!(s1.get(&[0, 1]).unwrap(), 1.0 + 3.0 + 5.0);
        let s2 = sum_axis(&x, 2).unwrap();
        assert_eq!(s2.get(&[1, 2]).unwrap(), 10.0 + 11.0);
        assert!(sum_axis(&x, 3).is_err());
    }

    #[test]
    fn mean_axis_divides() {
        let x = Tensor::from_vec(Shape::d2(2, 2), vec![1., 3., 5., 7.]).unwrap();
        let m = mean_axis(&x, 0).unwrap();
        assert_eq!(m.data(), &[3.0, 5.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let x = Tensor::from_vec(Shape::d2(2, 3), vec![1., 5., 5., -1., -2., 0.]).unwrap();
        assert_eq!(argmax_rows(&x).unwrap(), vec![1, 2]);
    }

    #[test]
    fn bias_round_trip() {
        let mut x = Tensor::zeros(Shape::d2(3, 2));
        let bias = Tensor::from_vec(Shape::d1(2), vec![1.0, -1.0]).unwrap();
        add_bias_rows(&mut x, &bias).unwrap();
        assert_eq!(x.get(&[2, 0]).unwrap(), 1.0);
        let g = sum_rows(&x);
        assert_eq!(g.data(), &[3.0, -3.0]);
        let bad = Tensor::zeros(Shape::d1(3));
        assert!(add_bias_rows(&mut x, &bad).is_err());
    }
}
