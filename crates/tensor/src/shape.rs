//! Tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape (dimension sizes) of a tensor.
///
/// A `Shape` is an ordered list of dimension extents. Rank 0 (`Shape::scalar`)
/// denotes a scalar with one element. Shapes are cheap to clone and are used
/// pervasively as map keys and in error messages.
///
/// # Example
///
/// ```
/// use echo_tensor::Shape;
///
/// let s = Shape::d3(4, 10, 512); // [B, T, H]
/// assert_eq!(s.num_elements(), 4 * 10 * 512);
/// assert_eq!(s.dim(1), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a list of dimension extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Convenience constructor for a rank-1 shape.
    pub fn d1(a: usize) -> Self {
        Shape(vec![a])
    }

    /// Convenience constructor for a rank-2 shape.
    pub fn d2(a: usize, b: usize) -> Self {
        Shape(vec![a, b])
    }

    /// Convenience constructor for a rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape(vec![a, b, c])
    }

    /// Convenience constructor for a rank-4 shape.
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Shape(vec![a, b, c, d])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (product of all extents; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of bytes an `f32` tensor of this shape occupies.
    pub fn num_bytes(&self) -> usize {
        self.num_elements() * std::mem::size_of::<f32>()
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use echo_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index to a linear row-major offset, or
    /// `None` if out of bounds or of the wrong rank.
    pub fn linear_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut off = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.0).zip(&strides) {
            if i >= d {
                return None;
            }
            off += i * s;
        }
        Some(off)
    }

    /// Returns a new shape with `axis` removed.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn without_axis(&self, axis: usize) -> Shape {
        let mut dims = self.0.clone();
        dims.remove(axis);
        Shape(dims)
    }

    /// Interprets the shape as a 2-D matrix by flattening all leading axes
    /// into rows and keeping the last axis as columns.
    ///
    /// A rank-1 shape `[n]` is viewed as `(1, n)`; a scalar as `(1, 1)`.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.0.len() {
            0 => (1, 1),
            1 => (1, self.0[0]),
            _ => {
                let cols = *self.0.last().expect("rank >= 2");
                (self.num_elements() / cols.max(1), cols)
            }
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_and_bytes() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.num_elements(), 24);
        assert_eq!(s.num_bytes(), 96);
        assert_eq!(Shape::scalar().num_elements(), 1);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::d2(3, 5).strides(), vec![5, 1]);
        assert_eq!(Shape::d1(7).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn linear_index_bounds() {
        let s = Shape::d2(2, 3);
        assert_eq!(s.linear_index(&[1, 2]), Some(5));
        assert_eq!(s.linear_index(&[2, 0]), None);
        assert_eq!(s.linear_index(&[0]), None);
    }

    #[test]
    fn as_matrix_flattens_leading() {
        assert_eq!(Shape::d3(2, 3, 4).as_matrix(), (6, 4));
        assert_eq!(Shape::d1(5).as_matrix(), (1, 5));
        assert_eq!(Shape::scalar().as_matrix(), (1, 1));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "[1, 2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn without_axis() {
        assert_eq!(Shape::d3(2, 3, 4).without_axis(1), Shape::d2(2, 4));
    }
}
