//! The owned dense tensor type.

use crate::error::TensorError;
use crate::layout::MatrixLayout;
use crate::matrix::{MatView, MatViewMut};
use crate::shape::Shape;
use crate::Result;
use crate::{policy, pool};

/// Element-wise ops on tensors smaller than this stay serial; the pool
/// dispatch overhead only pays for itself on large feature maps.
const PAR_EWISE_THRESHOLD: usize = 32 * 1024;
/// Minimum elements per band when an element-wise op is parallelized.
const PAR_EWISE_MIN_BAND: usize = 8 * 1024;

/// Bands an element-wise op over `out` on the worker pool, feeding each
/// band `f(start, chunk)`. Each element belongs to exactly one band, so
/// results are bit-identical to the serial loop for any worker count.
fn ewise_bands(out: &mut [f32], f: impl Fn(usize, &mut [f32]) + Sync) {
    let n = out.len();
    let threads = pool::global().num_threads();
    if n < PAR_EWISE_THRESHOLD || threads == 1 {
        f(0, out);
        return;
    }
    let bands = pool::band_count(n, PAR_EWISE_MIN_BAND, threads);
    if bands <= 1 {
        f(0, out);
        return;
    }
    let per = n.div_ceil(bands);
    let base = pool::SendPtr(out.as_mut_ptr());
    let base = &base;
    let f = &f;
    pool::global().run_indexed(bands, &move |bi| {
        let start = bi * per;
        let end = ((bi + 1) * per).min(n);
        if start >= end {
            return;
        }
        // SAFETY: bands partition `0..n` disjointly, so each index writes
        // a non-overlapping chunk of `out`.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
        f(start, chunk);
    });
}

/// An owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the value type flowing through the Echo graph: inputs,
/// weights, feature maps and gradients are all `Tensor`s. It implements the
/// small set of operations an LSTM training stack needs; anything fancier is
/// built in the operator crate on top of these primitives.
///
/// # Example
///
/// ```
/// use echo_tensor::{Tensor, Shape};
///
/// let a = Tensor::zeros(Shape::d2(2, 2));
/// let b = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.])?;
/// let c = a.zip_map(&b, |x, y| x + y)?;
/// assert_eq!(c.data(), b.data());
/// # Ok::<(), echo_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// `shape.num_elements()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every row-major linear index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape.num_elements();
        Tensor {
            shape,
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the tensor's storage in bytes.
    pub fn num_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The backing row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The backing row-major buffer, mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        self.shape
            .linear_index(index)
            .map(|i| self.data[i])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            })
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.linear_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            }),
        }
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.num_elements() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.clone(),
                to: shape,
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    ///
    /// Large tensors are banded over the shared worker pool; each element
    /// is computed by exactly one band, so the result is bit-identical to
    /// the serial loop.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data = vec![0.0f32; self.data.len()];
        let src = &self.data;
        ewise_bands(&mut data, |start, chunk| {
            let src = &src[start..start + chunk.len()];
            for (o, &v) in chunk.iter_mut().zip(src) {
                *o = f(v);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element in place (pool-banded like
    /// [`Tensor::map`]).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        ewise_bands(&mut self.data, |_, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
    }

    /// Combines two same-shaped tensors element-wise (pool-banded like
    /// [`Tensor::map`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "zip_map",
            });
        }
        let mut data = vec![0.0f32; self.data.len()];
        let (a_src, b_src) = (&self.data, &other.data);
        ewise_bands(&mut data, |start, chunk| {
            let a = &a_src[start..start + chunk.len()];
            let b = &b_src[start..start + chunk.len()];
            for ((o, &x), &y) in chunk.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        });
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// `self += alpha * other` (shapes must match; pool-banded like
    /// [`Tensor::map`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "axpy",
            });
        }
        let src = &other.data;
        ewise_bands(&mut self.data, |start, chunk| {
            let src = &src[start..start + chunk.len()];
            for (a, &b) in chunk.iter_mut().zip(src) {
                *a += alpha * b;
            }
        });
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `alpha`.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements (f64 accumulation).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum()
    }

    /// Maximum absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// L2 norm of all elements.
    pub fn norm_l2(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt()
    }

    /// Views the tensor as a 2-D row-major matrix `[rows x cols]` using
    /// [`Shape::as_matrix`] flattening.
    pub fn as_mat(&self) -> MatView<'_> {
        let (r, c) = self.shape.as_matrix();
        MatView::new(&self.data, r, c, MatrixLayout::RowMajor)
    }

    /// Mutable 2-D row-major view (see [`Tensor::as_mat`]).
    pub fn as_mat_mut(&mut self) -> MatViewMut<'_> {
        let (r, c) = self.shape.as_matrix();
        MatViewMut::new(&mut self.data, r, c, MatrixLayout::RowMajor)
    }

    /// Views the tensor's flattened matrix under an explicit layout, i.e.
    /// reinterprets the same bytes as `[rows x cols]` in `layout`.
    ///
    /// The caller asserts that the element count matches `rows * cols`.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols != self.len()`.
    pub fn view_as(&self, rows: usize, cols: usize, layout: MatrixLayout) -> MatView<'_> {
        MatView::new(&self.data, rows, cols, layout)
    }

    /// Matrix product `self · other` with optional transposes, producing a
    /// new row-major tensor.
    ///
    /// Both operands are flattened to matrices via [`Shape::as_matrix`].
    /// The kernel is chosen per problem size by the
    /// [dispatch layer](crate::policy); every backend is bit-identical,
    /// so the choice never affects numerics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::GemmDimension`] when shapes do not line up.
    pub fn matmul(&self, other: &Tensor, t_self: bool, t_other: bool) -> Result<Tensor> {
        let a = if t_self {
            self.as_mat().t()
        } else {
            self.as_mat()
        };
        let b = if t_other {
            other.as_mat().t()
        } else {
            other.as_mat()
        };
        let mut out = Tensor::zeros(Shape::d2(a.rows(), b.cols()));
        policy::dispatch_gemm(1.0, a, b, 0.0, &mut out.as_mat_mut())?;
        Ok(out)
    }

    /// Extracts the `i`-th slice along axis 0 (e.g. one time step of a
    /// `[T, B, H]` tensor) as an owned tensor of shape `shape[1..]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `i` exceeds axis 0, or
    /// [`TensorError::InvalidAxis`] for a rank-0 tensor.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
        }
        let t = self.shape.dim(0);
        if i >= t {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.shape.clone(),
            });
        }
        let inner: usize = self.shape.dims()[1..].iter().product();
        let slice = &self.data[i * inner..(i + 1) * inner];
        Ok(Tensor {
            shape: Shape::new(self.shape.dims()[1..].to_vec()),
            data: slice.to_vec(),
        })
    }

    /// Writes `value` into the `i`-th slice along axis 0.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `value`'s shape is not
    /// `shape[1..]`, or [`TensorError::IndexOutOfBounds`] for a bad `i`.
    pub fn set_axis0(&mut self, i: usize, value: &Tensor) -> Result<()> {
        if self.shape.rank() == 0 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
        }
        let t = self.shape.dim(0);
        let expected = Shape::new(self.shape.dims()[1..].to_vec());
        if i >= t {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.shape.clone(),
            });
        }
        if value.shape != expected {
            return Err(TensorError::ShapeMismatch {
                left: expected,
                right: value.shape.clone(),
                op: "set_axis0",
            });
        }
        let inner = value.len();
        self.data[i * inner..(i + 1) * inner].copy_from_slice(&value.data);
        Ok(())
    }

    /// Concatenates tensors along axis 0. All inputs must share `shape[1..]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty input list and
    /// [`TensorError::ShapeMismatch`] for ragged inputs.
    pub fn concat_axis0(tensors: &[&Tensor]) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::Empty { op: "concat" })?;
        if first.shape.rank() == 0 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
        }
        let tail = first.shape.dims()[1..].to_vec();
        let mut total0 = 0usize;
        for t in tensors {
            if t.shape.rank() == 0 || t.shape.dims()[1..] != tail[..] {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.clone(),
                    right: t.shape.clone(),
                    op: "concat",
                });
            }
            total0 += t.shape.dim(0);
        }
        let mut dims = vec![total0];
        dims.extend_from_slice(&tail);
        let mut data = Vec::with_capacity(dims.iter().product());
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data,
        })
    }

    /// Transposes a rank-2 tensor, producing a new row-major tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] for tensors that are not rank 2.
    pub fn transpose2(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::InvalidAxis {
                axis: 1,
                rank: self.shape.rank(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(Shape::d2(c, r));
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Permutes the axes of a rank-3 tensor, producing a new row-major
    /// tensor. `perm` maps output axis → input axis, e.g. `[0, 2, 1]` turns
    /// `[T, B, H]` into `[T, H, B]` (the EcoRNN sequence layout).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] for non-rank-3 tensors or an
    /// invalid permutation.
    pub fn permute3(&self, perm: [usize; 3]) -> Result<Tensor> {
        if self.shape.rank() != 3 {
            return Err(TensorError::InvalidAxis {
                axis: 2,
                rank: self.shape.rank(),
            });
        }
        let mut seen = [false; 3];
        for &p in &perm {
            if p >= 3 || seen[p] {
                return Err(TensorError::InvalidAxis { axis: p, rank: 3 });
            }
            seen[p] = true;
        }
        let d = self.shape.dims();
        let out_shape = Shape::d3(d[perm[0]], d[perm[1]], d[perm[2]]);
        let in_strides = self.shape.strides();
        let mut out = Tensor::zeros(out_shape);
        let (o0, o1, o2) = (out.shape.dim(0), out.shape.dim(1), out.shape.dim(2));
        let mut idx = 0usize;
        for a in 0..o0 {
            for b in 0..o1 {
                for c in 0..o2 {
                    let mut input_index = [0usize; 3];
                    input_index[perm[0]] = a;
                    input_index[perm[1]] = b;
                    input_index[perm[2]] = c;
                    let off = input_index[0] * in_strides[0]
                        + input_index[1] * in_strides[1]
                        + input_index[2] * in_strides[2];
                    out.data[idx] = self.data[off];
                    idx += 1;
                }
            }
        }
        Ok(out)
    }

    /// `true` when every element differs from `other`'s by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "approx_eq",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .all(|(&a, &b)| (a - b).abs() <= tol))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(Shape::scalar())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.get(&[1, 0]).unwrap(), 4.0);
        assert_eq!(t.len(), 6);
        assert!(Tensor::from_vec(Shape::d2(2, 3), vec![0.0; 5]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let x = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let eye = Tensor::from_vec(Shape::d2(2, 2), vec![1., 0., 0., 1.]).unwrap();
        let y = x.matmul(&eye, false, false).unwrap();
        assert_eq!(y, x);
        let yt = x.matmul(&eye, true, false).unwrap();
        assert_eq!(yt, x.transpose2().unwrap());
    }

    #[test]
    fn index_axis0_and_set() {
        let mut t = Tensor::zeros(Shape::d3(3, 2, 2));
        let step = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        t.set_axis0(1, &step).unwrap();
        assert_eq!(t.index_axis0(1).unwrap(), step);
        assert_eq!(t.index_axis0(0).unwrap().sum(), 0.0);
        assert!(t.index_axis0(3).is_err());
    }

    #[test]
    fn concat_axis0_shapes() {
        let a = Tensor::full(Shape::d2(1, 3), 1.0);
        let b = Tensor::full(Shape::d2(2, 3), 2.0);
        let c = Tensor::concat_axis0(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &Shape::d2(3, 3));
        assert_eq!(c.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(c.get(&[2, 2]).unwrap(), 2.0);
        let ragged = Tensor::full(Shape::d2(1, 4), 0.0);
        assert!(Tensor::concat_axis0(&[&a, &ragged]).is_err());
        assert!(Tensor::concat_axis0(&[]).is_err());
    }

    #[test]
    fn permute3_tbh_to_thb() {
        // [T=2, B=2, H=3]
        let t = Tensor::from_fn(Shape::d3(2, 2, 3), |i| i as f32);
        let p = t.permute3([0, 2, 1]).unwrap();
        assert_eq!(p.shape(), &Shape::d3(2, 3, 2));
        for ti in 0..2 {
            for b in 0..2 {
                for h in 0..3 {
                    assert_eq!(t.get(&[ti, b, h]).unwrap(), p.get(&[ti, h, b]).unwrap());
                }
            }
        }
        // Permuting back restores the original.
        let back = p.permute3([0, 2, 1]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Tensor::full(Shape::d1(4), 2.0);
        let b = Tensor::full(Shape::d1(4), 3.0);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0; 4]);
        assert_eq!(a.mul(&b).unwrap().data(), &[6.0; 4]);
        let mut c = a.clone();
        c.axpy(0.5, &b).unwrap();
        assert_eq!(c.data(), &[3.5; 4]);
        assert!((a.norm_l2() - 4.0).abs() < 1e-6);
        assert_eq!(b.max_abs(), 3.0);
    }

    #[test]
    fn reshape_checks_element_count() {
        let t = Tensor::zeros(Shape::d2(2, 3));
        assert!(t.reshape(Shape::d1(6)).is_ok());
        assert!(t.reshape(Shape::d1(7)).is_err());
    }
}
