//! The backend bit-exactness contract, property-tested.
//!
//! Every GEMM backend in this crate (naive, blocked, packed, and
//! packed-parallel at any band count) computes each output element with
//! the identical floating-point operation sequence, so their outputs are
//! **bit-identical** — not approximately equal. This is what makes the
//! autotuned dispatch layer numerically transparent and extends the
//! data-parallel engine's bit-exactness contract to "any thread count".

use echo_tensor::{
    available_micro_kernels, gemm, gemm_packed, gemm_packed_parallel, gemm_packed_parallel_with,
    MatViewMut, MatrixLayout, Shape,
};
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// Packed-parallel at every way count, the serial packed kernel, and
    /// the blocked kernel are all bit-identical to the naive kernel,
    /// across input layouts and with non-trivial alpha/beta.
    #[test]
    fn all_backends_bit_identical(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        seed in 0u64..500,
        la in 0usize..2,
        lb in 0usize..2,
        ai in 0usize..3,
        bi in 0usize..3,
    ) {
        let alpha = [1.0f32, 1.5, -0.75][ai];
        let beta = [0.0f32, 1.0, 0.5][bi];
        let layouts = [MatrixLayout::RowMajor, MatrixLayout::ColMajor];
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let a = echo_tensor::init::uniform(Shape::d2(m, k), 2.0, &mut rng);
        let b = echo_tensor::init::uniform(Shape::d2(k, n), 2.0, &mut rng);
        let c0 = echo_tensor::init::uniform(Shape::d2(m, n), 1.0, &mut rng);
        let av = a.view_as(m, k, layouts[la]);
        let bv = b.view_as(k, n, layouts[lb]);

        let mut reference = c0.data().to_vec();
        gemm::gemm(
            alpha, av, bv, beta,
            &mut MatViewMut::new(&mut reference, m, n, MatrixLayout::RowMajor),
        ).unwrap();
        let reference = bits(&reference);

        let mut blocked = c0.data().to_vec();
        gemm::gemm_blocked(
            alpha, av, bv, beta,
            &mut MatViewMut::new(&mut blocked, m, n, MatrixLayout::RowMajor),
        ).unwrap();
        prop_assert_eq!(&bits(&blocked), &reference, "blocked vs naive");

        let mut packed = c0.data().to_vec();
        gemm_packed(
            alpha, av, bv, beta,
            &mut MatViewMut::new(&mut packed, m, n, MatrixLayout::RowMajor),
        ).unwrap();
        prop_assert_eq!(&bits(&packed), &reference, "packed vs naive");

        for ways in [1usize, 2, 4, 8] {
            let mut c = c0.data().to_vec();
            gemm_packed_parallel(
                alpha, av, bv, beta,
                &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
                ways,
            ).unwrap();
            prop_assert_eq!(&bits(&c), &reference, "packed ways={} vs naive", ways);
        }
    }

    /// Every available SIMD micro-kernel (scalar always; AVX2/NEON when
    /// the host has them), at several KC/MC tilings and way counts, is
    /// bit-identical to the naive kernel. The SIMD kernels use separate
    /// multiply and add (never FMA), so each lane replays the scalar
    /// kernel's exact IEEE operation sequence — this property is the
    /// proof.
    #[test]
    fn simd_kernels_bit_identical_across_tiles(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        seed in 0u64..200,
        ai in 0usize..3,
        bi in 0usize..3,
    ) {
        let alpha = [1.0f32, 1.5, -0.75][ai];
        let beta = [0.0f32, 1.0, 0.5][bi];
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let a = echo_tensor::init::uniform(Shape::d2(m, k), 2.0, &mut rng);
        let b = echo_tensor::init::uniform(Shape::d2(k, n), 2.0, &mut rng);
        let c0 = echo_tensor::init::uniform(Shape::d2(m, n), 1.0, &mut rng);

        let mut reference = c0.data().to_vec();
        gemm::gemm(
            alpha, a.as_mat(), b.as_mat(), beta,
            &mut MatViewMut::new(&mut reference, m, n, MatrixLayout::RowMajor),
        ).unwrap();
        let reference = bits(&reference);

        for kernel in available_micro_kernels() {
            for (kc, mc) in [(256usize, 128usize), (64, 32), (16, 8)] {
                for ways in [1usize, 3] {
                    let mut c = c0.data().to_vec();
                    gemm_packed_parallel_with(
                        alpha, a.as_mat(), b.as_mat(), beta,
                        &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
                        ways, kernel, kc, mc,
                    ).unwrap();
                    prop_assert_eq!(
                        &bits(&c), &reference,
                        "kernel={} kc={} mc={} ways={}", kernel.name(), kc, mc, ways
                    );
                }
            }
        }
    }

    /// Row-banded `gemm_parallel` is bit-identical to the serial blocked
    /// kernel for every thread count (it shares the band kernel).
    #[test]
    fn gemm_parallel_bit_identical_to_blocked(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u64..500,
    ) {
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let a = echo_tensor::init::uniform(Shape::d2(m, k), 2.0, &mut rng);
        let b = echo_tensor::init::uniform(Shape::d2(k, n), 2.0, &mut rng);

        let mut reference = vec![0.0f32; m * n];
        gemm::gemm_blocked(
            1.0, a.as_mat(), b.as_mat(), 0.0,
            &mut MatViewMut::new(&mut reference, m, n, MatrixLayout::RowMajor),
        ).unwrap();
        let reference = bits(&reference);

        for threads in [1usize, 2, 4, 8] {
            let mut c = vec![0.0f32; m * n];
            gemm::gemm_parallel(
                1.0, a.as_mat(), b.as_mat(), 0.0,
                &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
                threads,
            ).unwrap();
            prop_assert_eq!(&bits(&c), &reference, "threads = {}", threads);
        }
    }
}

/// A large LSTM-shaped product (the kind the dispatch layer sends to the
/// packed tier) stays bit-identical across backends — one deterministic
/// case big enough to cross every KC/MC boundary and the parallel
/// threshold.
#[test]
fn lstm_shaped_product_bit_identical() {
    let (m, k, n) = (64, 300, 272);
    let mut rng = echo_tensor::init::seeded_rng(42);
    let a = echo_tensor::init::uniform(Shape::d2(m, k), 1.0, &mut rng);
    let b = echo_tensor::init::uniform(Shape::d2(k, n), 1.0, &mut rng);
    let mut reference = vec![0.0f32; m * n];
    gemm::gemm(
        1.0,
        a.as_mat(),
        b.as_mat(),
        0.0,
        &mut MatViewMut::new(&mut reference, m, n, MatrixLayout::RowMajor),
    )
    .unwrap();
    for ways in [1usize, 3, 8] {
        let mut c = vec![0.0f32; m * n];
        gemm_packed_parallel(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
            ways,
        )
        .unwrap();
        assert_eq!(bits(&c), bits(&reference), "ways = {ways}");
    }
    // And every SIMD variant at the default tiling — a shape this large
    // crosses every KC/MC boundary, so edge-column/row handling is
    // exercised alongside the full-tile micro-kernel.
    for kernel in available_micro_kernels() {
        for ways in [1usize, 8] {
            let mut c = vec![0.0f32; m * n];
            gemm_packed_parallel_with(
                1.0,
                a.as_mat(),
                b.as_mat(),
                0.0,
                &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
                ways,
                kernel,
                256,
                128,
            )
            .unwrap();
            assert_eq!(
                bits(&c),
                bits(&reference),
                "kernel = {} ways = {ways}",
                kernel.name()
            );
        }
    }
}
