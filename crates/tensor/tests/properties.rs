//! Property-based tests for the tensor crate's core invariants.

use echo_tensor::{gemm, kernels, MatView, MatViewMut, MatrixLayout, Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, n)
}

proptest! {
    /// GEMM under any layout combination equals the triple-loop reference.
    #[test]
    fn gemm_layout_invariance(
        (m, k, n) in small_dims(),
        seed in 0u64..1000,
        la in 0usize..2, lb in 0usize..2, lc in 0usize..2,
    ) {
        let layouts = [MatrixLayout::RowMajor, MatrixLayout::ColMajor];
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let a = echo_tensor::init::uniform(Shape::d2(m, k), 2.0, &mut rng);
        let b = echo_tensor::init::uniform(Shape::d2(k, n), 2.0, &mut rng);
        let av = a.view_as(m, k, layouts[la]);
        let bv = b.view_as(k, n, layouts[lb]);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm::gemm(1.0, av, bv, 0.0, &mut MatViewMut::new(&mut c1, m, n, layouts[lc])).unwrap();
        gemm::gemm_reference(1.0, av, bv, 0.0, &mut MatViewMut::new(&mut c2, m, n, layouts[lc])).unwrap();
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// The two fully-connected formulations (`Y = XWᵀ` and `Yᵀ = WXᵀ`)
    /// compute the same mathematical result.
    #[test]
    fn fc_formulations_agree(b in 1usize..6, h in 1usize..6, o in 1usize..8, seed in 0u64..500) {
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let x = echo_tensor::init::uniform(Shape::d2(b, h), 1.0, &mut rng);
        let w = echo_tensor::init::uniform(Shape::d2(o, h), 1.0, &mut rng);
        let mut y = vec![0.0f32; b * o];
        gemm::fc_row_major(
            x.as_mat(),
            w.as_mat(),
            &mut MatViewMut::new(&mut y, b, o, MatrixLayout::RowMajor),
        ).unwrap();
        // Column-major X: physically [H x B].
        let xt = x.transpose2().unwrap();
        let mut yt = vec![0.0f32; o * b];
        gemm::fc_col_major(
            w.as_mat(),
            MatView::new(xt.data(), b, h, MatrixLayout::ColMajor),
            &mut MatViewMut::new(&mut yt, o, b, MatrixLayout::RowMajor),
        ).unwrap();
        for bi in 0..b {
            for oi in 0..o {
                prop_assert!((y[bi * o + oi] - yt[oi * b + bi]).abs() < 1e-3);
            }
        }
    }

    /// Transposing a matrix view twice yields the identity.
    #[test]
    fn transpose_involution(r in 1usize..10, c in 1usize..10, data in values(81)) {
        prop_assume!(data.len() >= r * c);
        let d = &data[..r * c];
        let v = MatView::new(d, r, c, MatrixLayout::RowMajor);
        let tt = v.t().t();
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(v.get(i, j), tt.get(i, j));
            }
        }
    }

    /// permute3 with the inverse permutation restores the original tensor.
    #[test]
    fn permute3_round_trip(a in 1usize..5, b in 1usize..5, c in 1usize..5, seed in 0u64..500) {
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let t = echo_tensor::init::uniform(Shape::d3(a, b, c), 1.0, &mut rng);
        for perm in [[0usize, 2, 1], [1, 0, 2], [2, 1, 0], [1, 2, 0], [2, 0, 1], [0, 1, 2]] {
            let mut inv = [0usize; 3];
            for (out_axis, &in_axis) in perm.iter().enumerate() {
                inv[in_axis] = out_axis;
            }
            let p = t.permute3(perm).unwrap();
            let back = p.permute3(inv).unwrap();
            prop_assert_eq!(&back, &t);
        }
    }

    /// Softmax outputs are a probability distribution per row.
    #[test]
    fn softmax_is_distribution(rows in 1usize..5, cols in 1usize..8, seed in 0u64..500) {
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let x = echo_tensor::init::uniform(Shape::d2(rows, cols), 5.0, &mut rng);
        let y = kernels::softmax_rows(&x);
        for r in 0..rows {
            let row = &y.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Concat then slice along axis 0 returns the original tensors.
    #[test]
    fn concat_slice_round_trip(n0 in 1usize..4, n1 in 1usize..4, inner in 1usize..6, seed in 0u64..500) {
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let a = echo_tensor::init::uniform(Shape::d2(n0, inner), 1.0, &mut rng);
        let b = echo_tensor::init::uniform(Shape::d2(n1, inner), 1.0, &mut rng);
        let cat = Tensor::concat_axis0(&[&a, &b]).unwrap();
        prop_assert_eq!(cat.shape().dim(0), n0 + n1);
        for i in 0..n0 {
            let slice = cat.index_axis0(i).unwrap();
            prop_assert_eq!(slice.data(), &a.data()[i * inner..(i + 1) * inner]);
        }
        for i in 0..n1 {
            let slice = cat.index_axis0(n0 + i).unwrap();
            prop_assert_eq!(slice.data(), &b.data()[i * inner..(i + 1) * inner]);
        }
    }

    /// Gradient clipping never increases the global norm and is a no-op
    /// below the threshold.
    #[test]
    fn clip_norm_contract(seed in 0u64..500, max_norm in 0.1f64..10.0) {
        let mut rng = echo_tensor::init::seeded_rng(seed);
        let mut g1 = echo_tensor::init::uniform(Shape::d1(16), 2.0, &mut rng);
        let mut g2 = echo_tensor::init::uniform(Shape::d1(16), 2.0, &mut rng);
        let before = (g1.norm_l2().powi(2) + g2.norm_l2().powi(2)).sqrt();
        kernels::clip_global_norm(&mut [&mut g1, &mut g2], max_norm);
        let after = (g1.norm_l2().powi(2) + g2.norm_l2().powi(2)).sqrt();
        prop_assert!(after <= max_norm.max(before) + 1e-4);
        if before <= max_norm {
            prop_assert!((after - before).abs() < 1e-6);
        }
    }
}
