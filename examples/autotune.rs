//! Transparent backend selection (paper §5.4, Figure 11): before training
//! starts, Echo's microbenchmark simulates each LSTM backend under the
//! user's hyperparameters and picks the fastest — no `--fused` flags.
//!
//! ```sh
//! cargo run -p echo --example autotune --release
//! ```

use echo::autotune::autotune;
use echo_device::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("autotuning LSTM backends on a simulated Titan Xp\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10}   choice",
        "hyperparameters", "Default", "CuDNN", "EcoRNN"
    );
    for (batch, hidden, layers) in [
        (32usize, 256usize, 1usize),
        (64, 512, 1),
        (64, 512, 4),
        (128, 1024, 2),
        (32, 256, 4),
    ] {
        let report = autotune(batch, hidden, layers, 50, &DeviceSpec::titan_xp())?;
        let t = |b| {
            report
                .time_of(b)
                .map(|ns| format!("{:.2}ms", ns as f64 / 1e6))
                .unwrap_or_default()
        };
        println!(
            "B={batch:<4} H={hidden:<5} L={layers:<10} {:>10} {:>10} {:>10}   {}",
            t(echo_rnn::LstmBackend::Default),
            t(echo_rnn::LstmBackend::CuDnn),
            t(echo_rnn::LstmBackend::EcoRnn),
            report.choice,
        );
    }
    println!(
        "\nThe microbenchmark runs once per training job (milliseconds of simulated\n\
         time) and correlates with full-model throughput at rho > 0.9 (Table 2)."
    );
    Ok(())
}
