//! Data-parallel training across model replicas (paper §6.6, Figure 17):
//! each worker thread owns a full executor replica and a simulated GPU,
//! gradients are all-reduced over a binary tree every step, and the
//! result is bit-exact equal to serial training at any replica count.
//!
//! ```sh
//! cargo run -p echo --example data_parallel --release
//! ```

use echo_data::{BpttBatches, LmBatch, LmCorpus, Vocab};
use echo_device::{CommModel, DeviceSpec, ScalingReport};
use echo_graph::{Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{
    DataParallelOptions, MicrobatchTrainer, ParallelTrainer, Sgd, WordLm, WordLmHyper,
};
use echo_rnn::LstmBackend;
use std::sync::Arc;
use std::time::Instant;

const LANES: usize = 32;
const MICRO: usize = 8;
const STEPS: usize = 6;
const SEED: u64 = 13;

fn template(lm: &WordLm) -> Executor {
    let mut exec = Executor::new(
        Arc::clone(&lm.graph),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0),
    );
    lm.bind_params(&mut exec, SEED).expect("bind");
    exec
}

fn batches(lm: &WordLm) -> Vec<LmBatch> {
    let corpus = LmCorpus::synthetic(Vocab::new(80), 24_000, 0.9, 5);
    BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(STEPS)
        .collect()
}

fn optimizer() -> Sgd {
    Sgd::new(0.5).with_momentum(0.9).with_clip_norm(5.0)
}

fn main() {
    let lm = WordLm::build(WordLmHyper::tiny(80, LstmBackend::CuDnn));
    let batches = batches(&lm);
    let grad_bytes: u64 = template(&lm)
        .export_params()
        .iter()
        .map(|(_, t)| t.len() as u64 * 4)
        .sum();
    println!(
        "word-LM data parallelism: {LANES} lanes, {MICRO} micro-batches, \
         {STEPS} steps, {:.2} MiB of gradients per all-reduce\n",
        grad_bytes as f64 / (1 << 20) as f64
    );

    // --- Host wall-clock: serial reference vs. the worker fleet. -------
    let mut serial = MicrobatchTrainer::for_word_lm(
        &lm,
        template(&lm),
        LANES,
        MICRO,
        Box::new(optimizer()),
        None,
    )
    .expect("serial trainer");
    let start = Instant::now();
    let mut serial_losses = Vec::new();
    for batch in &batches {
        serial_losses.push(serial.step(batch).expect("step").loss);
    }
    let serial_wall = start.elapsed();
    println!(
        "serial   {STEPS} steps in {:>8.2?}  (loss {:.4} -> {:.4})",
        serial_wall,
        serial_losses[0],
        serial_losses[serial_losses.len() - 1]
    );

    let mut wall_at_4 = serial_wall;
    for replicas in [1usize, 2, 4] {
        let mut trainer = ParallelTrainer::for_word_lm(
            &lm,
            &template(&lm),
            LANES,
            &DataParallelOptions::new(replicas, MICRO),
            Box::new(optimizer()),
        )
        .expect("parallel trainer");
        let start = Instant::now();
        let mut losses = Vec::new();
        for batch in &batches {
            losses.push(trainer.step(batch).loss);
        }
        let wall = start.elapsed();
        if replicas == 4 {
            wall_at_4 = wall;
        }
        let exact = losses
            .iter()
            .zip(&serial_losses)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "K={replicas}      {STEPS} steps in {:>8.2?}  speedup {:>5.2}x  \
             bit-exact vs serial: {}",
            wall,
            serial_wall.as_secs_f64() / wall.as_secs_f64(),
            if exact { "yes" } else { "NO" }
        );
        assert!(exact, "parallel losses diverged from serial");
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nhost parallelism: {cores} core(s) available — wall-clock speedup \
         is bounded by hardware ({}), the simulated scaling below is not.\n",
        if cores >= 4 {
            "expect ~4x at K=4".to_string()
        } else {
            format!("K=4 cannot beat {cores} core(s); run on a wider machine")
        }
    );
    let _ = wall_at_4;

    // --- Simulated scaling: per-replica device clocks + interconnect. --
    // One simulated Titan Xp per replica; the all-reduce term comes from
    // the analytic PCIe model, matching the paper's single-machine
    // testbed.
    let sim_spec = DeviceSpec::titan_xp();
    let mut serial_sim = MicrobatchTrainer::for_word_lm(
        &lm,
        template(&lm),
        LANES,
        MICRO,
        Box::new(optimizer()),
        Some(sim_spec.clone()),
    )
    .expect("serial trainer");
    let mut serial_step_ns = 0;
    for batch in &batches {
        serial_step_ns += serial_sim.step(batch).expect("step").replicas[0].sim_ns;
    }
    serial_step_ns /= STEPS as u64;

    let mut report = ScalingReport::new(serial_step_ns, grad_bytes, CommModel::pcie_gen3());
    for replicas in [1usize, 2, 4] {
        let mut trainer = ParallelTrainer::for_word_lm(
            &lm,
            &template(&lm),
            LANES,
            &DataParallelOptions::new(replicas, MICRO).with_sim(sim_spec.clone()),
            Box::new(optimizer()),
        )
        .expect("parallel trainer");
        let mut per_replica = vec![0u64; replicas];
        for batch in &batches {
            for stat in trainer.step(batch).replicas {
                per_replica[stat.replica] += stat.sim_ns;
            }
        }
        for ns in &mut per_replica {
            *ns /= STEPS as u64;
        }
        report.push_measurement(&per_replica);
    }
    println!("simulated scaling (per-replica Titan Xp clocks, PCIe tree all-reduce):");
    println!("{report}");
}
