//! Word-level language modeling (paper §2.1/§6.3): train a small LSTM LM
//! on a synthetic PTB-like corpus, watch perplexity fall, and compare the
//! three LSTM backends' simulated training throughput.
//!
//! ```sh
//! cargo run -p echo --example language_modeling --release
//! ```

use echo_data::{BpttBatches, LmCorpus, Vocab};
use echo_device::{DeviceSim, DeviceSpec};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{perplexity, Sgd, Speedometer, WordLm, WordLmHyper};
use echo_rnn::LstmBackend;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: real training on the CPU (numeric plane). ---
    let vocab = Vocab::new(80);
    let corpus = LmCorpus::synthetic(vocab, 20_000, 0.9, 11);
    let lm = WordLm::build(WordLmHyper::tiny(vocab.size(), LstmBackend::EcoRnn));
    let mem = DeviceMemory::with_capacity(2 << 30);
    let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem);
    lm.bind_params(&mut exec, 1)?;
    let mut sgd = Sgd::new(0.7).with_clip_norm(5.0);
    println!(
        "training a {}-word LM ({} tokens)...",
        vocab.size(),
        corpus.tokens().len()
    );
    for epoch in 0..5 {
        let mut total = 0.0f64;
        let mut n = 0u32;
        let batches = BpttBatches::new(corpus.tokens(), 16, lm.hyper.seq_len);
        for batch in batches {
            let stats =
                exec.train_step(&lm.bindings(&batch), lm.loss, ExecOptions::default(), None)?;
            total += f64::from(stats.loss.unwrap());
            n += 1;
            sgd.step(&mut exec);
        }
        println!(
            "  epoch {epoch}: perplexity {:.1}",
            perplexity((total / f64::from(n)) as f32)
        );
    }

    // --- Part 2: backend throughput on the simulated Titan Xp. ---
    println!("\nsimulated training throughput (PTB-scale, H=650, B=32):");
    for backend in LstmBackend::ALL {
        let big = WordLm::build(WordLmHyper::mxnet_example(10_000, 650, backend));
        let mem = DeviceMemory::titan_xp();
        let mut exec = Executor::new(Arc::clone(&big.graph), StashPlan::stash_all(), mem);
        big.bind_param_shapes(&mut exec)?;
        let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
        sim.set_record_trace(false);
        let mut meter = Speedometer::new();
        exec.train_step(
            &big.symbolic_bindings(32),
            big.loss,
            ExecOptions {
                training: true,
                numeric: false,
            },
            Some(&mut sim),
        )?;
        sim.synchronize();
        meter.record(32, sim.elapsed_ns());
        println!(
            "  {backend:<8} {:>8.0} samples/s",
            meter.samples_per_second()
        );
    }
    Ok(())
}
