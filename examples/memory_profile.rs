//! Memory profiling walkthrough (paper §3.2): run the full-scale NMT
//! model on the symbolic plane against the simulated 12 GB Titan Xp and
//! print the two-axis memory breakdown — then recompile with Echo and
//! watch the attention share collapse.
//!
//! ```sh
//! cargo run -p echo --example memory_profile --release
//! ```

use echo::{EchoCompiler, EchoConfig};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::{DeviceMemory, MemoryBreakdown};
use echo_models::{NmtHyper, NmtModel};
use echo_rnn::LstmBackend;
use std::sync::Arc;

fn profile(echo: bool) -> Result<MemoryBreakdown, Box<dyn std::error::Error>> {
    let model = NmtModel::build(NmtHyper::zhu(LstmBackend::Default));
    let batch = 128usize;
    let bindings = model.symbolic_bindings(batch);
    let plan = if echo {
        EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )?
            .plan
    } else {
        StashPlan::stash_all()
    };
    let mem = DeviceMemory::titan_xp();
    let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem.clone());
    model.bind_param_shapes(&mut exec)?;
    exec.train_step(
        &bindings,
        model.loss,
        ExecOptions {
            training: true,
            numeric: false,
        },
        None,
    )?;
    Ok(MemoryBreakdown::at_peak(&mem))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("NMT (Zhu et al. setting), batch 128, simulated 12 GB Titan Xp\n");
    println!("--- framework default (stash everything) ---");
    println!("{}", profile(false)?);
    println!("--- after the Echo recomputation pass ---");
    println!("{}", profile(true)?);
    println!(
        "The symbolic plane executed no arithmetic: these byte-exact numbers come\n\
         from the allocator observing the exact tensor lifetimes the plan implies."
    );
    Ok(())
}
