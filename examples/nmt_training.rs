//! End-to-end NMT training (paper §6.2 / Figure 12 in miniature): train a
//! seq2seq+attention model on a synthetic parallel corpus twice — with the
//! framework-default stash-everything plan and with the Echo compiler's
//! recomputation plan — and show identical learning at a fraction of the
//! memory.
//!
//! ```sh
//! cargo run -p echo --example nmt_training --release
//! ```

use echo::{EchoCompiler, EchoConfig};
use echo_data::{NmtBatch, ParallelCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel, Sgd};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = ParallelCorpus::synthetic(Vocab::new(60), Vocab::new(50), 600, 3..=8, 5);
    let mut hyper = NmtHyper::tiny(corpus.src_vocab().size(), corpus.tgt_vocab().size());
    hyper.hidden = 48;
    hyper.embed = 32;
    hyper.src_len = 8;
    hyper.tgt_len = 9;
    let model = NmtModel::build(hyper);
    let (train, valid) = corpus.split_validation(32);
    let batches = NmtBatch::bucketed(train, 8);

    let compiled = EchoCompiler::new(EchoConfig::default()).compile(
        &model.graph,
        &model.bindings(&batches[0]),
        &model.param_shapes(),
        &[model.loss, model.logits],
    )?;
    println!(
        "echo pass found {} recomputation segments (one per decoder step)\n",
        compiled.report.segments.len()
    );

    for (name, plan) in [
        ("baseline", StashPlan::stash_all()),
        ("echo    ", compiled.plan.clone()),
    ] {
        let mem = DeviceMemory::with_capacity(2 << 30);
        let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem.clone());
        model.bind_params(&mut exec, 2)?;
        let mut sgd = Sgd::new(1.0).with_clip_norm(5.0);
        let mut loss = 0.0;
        for epoch in 0..20 {
            let mut total = 0.0;
            for batch in &batches {
                let stats = exec.train_step(
                    &model.bindings(batch),
                    model.loss,
                    ExecOptions::default(),
                    None,
                )?;
                total += stats.loss.unwrap();
                sgd.step(&mut exec);
            }
            loss = total / batches.len() as f32;
            if epoch % 5 == 4 {
                let bleu = model.validation_bleu(&mut exec, valid, 8)?;
                println!(
                    "{name} epoch {epoch:>2}: loss {loss:.3}  valid BLEU {bleu:5.1}  peak mem {:.1} MiB",
                    mem.peak_bytes() as f64 / (1 << 20) as f64
                );
            }
        }
        let _ = loss;
        println!();
    }
    println!("identical curves, smaller footprint: that is the paper's claim.");
    Ok(())
}
