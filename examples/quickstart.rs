//! Quickstart: build a small attention model, let the Echo compiler find
//! its O-shape segments, and train one step with and without the plan.
//!
//! ```sh
//! cargo run -p echo --example quickstart
//! ```

use echo::{EchoCompiler, EchoConfig};
use echo_data::{NmtBatch, ParallelCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic translation task and a small seq2seq+attention model.
    let corpus = ParallelCorpus::synthetic(Vocab::new(120), Vocab::new(100), 64, 4..=12, 7);
    let model = NmtModel::build(NmtHyper::tiny(
        corpus.src_vocab().size(),
        corpus.tgt_vocab().size(),
    ));
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);

    // 2. Run the Echo compiler: shape inference + O-shape detection.
    let compiled = EchoCompiler::new(EchoConfig::default()).compile(
        &model.graph,
        &model.bindings(&batch),
        &model.param_shapes(),
        &[model.loss, model.logits],
    )?;
    println!("{}", compiled.report);

    // 3. Train one step under each plan and compare.
    let mut results = Vec::new();
    for (name, plan) in [
        ("baseline (stash everything)", StashPlan::stash_all()),
        ("echo (partial forward propagation)", compiled.plan.clone()),
    ] {
        let mem = DeviceMemory::with_capacity(2 << 30);
        let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem.clone());
        model.bind_params(&mut exec, 42)?;
        let stats = exec.train_step(
            &model.bindings(&batch),
            model.loss,
            ExecOptions::default(),
            None,
        )?;
        println!(
            "{name}: loss = {:.6}, peak device memory = {:.2} MiB, replays = {}",
            stats.loss.unwrap(),
            mem.peak_bytes() as f64 / (1 << 20) as f64,
            stats.replays,
        );
        results.push((stats.loss.unwrap(), mem.peak_bytes()));
    }

    assert_eq!(results[0].0, results[1].0, "loss must be bit-exact");
    println!(
        "\nEcho reduced the footprint by {:.1}% at zero accuracy cost.",
        100.0 * (1.0 - results[1].1 as f64 / results[0].1 as f64)
    );
    Ok(())
}
