//! Serving quickstart: the continuous-batching engine behind the
//! line-protocol front end.
//!
//! Starts an [`echo_serve::Engine`] (continuous in-flight scheduler),
//! wraps it in the newline-delimited-JSON TCP [`echo_serve::Frontend`],
//! then plays both roles of the wire: a handful of concurrent TCP
//! clients stream generations while the main thread polls `STATS`.
//! Run with:
//!
//! ```text
//! cargo run --release -p echo-serve --example serve_demo
//! ```
//!
//! Everything printed under `session N:` travelled through the real
//! protocol — connect with `nc <addr>` while this runs and type
//! `{"op":"generate","session":99,"prompt":[3,1],"max_new_tokens":8}`
//! to join in.

use echo_models::WordLmHyper;
use echo_rnn::LstmBackend;
use echo_serve::{Engine, Frontend, FrontendConfig, JsonValue, ServeConfig, ServeError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = 50;
    let engine = Arc::new(Engine::start(
        WordLmHyper::tiny(vocab, LstmBackend::Default),
        42,
        ServeConfig {
            max_batch: 4,
            queue_capacity: 64,
            workers: 2,
            session_capacity: 8,
            ..ServeConfig::default()
        },
    )?);
    println!(
        "engine up: {} inference plans (B = 1..={}), arena bytes per plan: {:?}",
        engine.plans().len(),
        engine.plans().len(),
        engine
            .plans()
            .iter()
            .map(|p| p.arena_bytes())
            .collect::<Vec<_>>(),
    );

    let frontend = Frontend::start(Arc::clone(&engine), FrontendConfig::default())?;
    let addr = frontend.local_addr();
    println!("frontend listening on {addr} (newline-delimited JSON)");

    // Four concurrent TCP clients, each streaming a 12-token generation
    // from its own prompt. Their sessions overlap in time, so they share
    // decode steps: watch the `batch` field climb as neighbors join.
    let decode_len = 12;
    std::thread::scope(|scope| -> Result<(), ServeError> {
        for session in 0..4u64 {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let prompt = (session * 13 % vocab as u64) as u32;
                writeln!(
                    writer,
                    "{{\"op\":\"generate\",\"session\":{session},\
                     \"prompt\":[{prompt}],\"max_new_tokens\":{decode_len}}}"
                )
                .expect("send");
                let mut decoded = vec![prompt];
                let mut batches = Vec::new();
                loop {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("recv");
                    let frame = JsonValue::parse(line.trim()).expect("frame");
                    match frame.get("event").and_then(JsonValue::as_str) {
                        Some("token") => {
                            decoded.push(
                                frame.get("token").and_then(JsonValue::as_u64).unwrap() as u32
                            );
                            batches.push(frame.get("batch").and_then(JsonValue::as_u64).unwrap());
                        }
                        Some("done") => break,
                        other => panic!("unexpected event {other:?}: {line}"),
                    }
                }
                println!("session {session}: {decoded:?} (lane counts {batches:?})");
            });
        }
        Ok(())
    })?;

    // The same STATS endpoint an operator would scrape, over the wire.
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "STATS")?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let stats = JsonValue::parse(line.trim()).map_err(ServeError::Invalid)?;
    let num = |key: &str| stats.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
    println!(
        "STATS: {} tokens over {} decode steps (occupancy {:.2}, churn {:.2}/step, \
         max batch {}); cache hit rate {:.2}, {} evictions, {} re-warms; \
         p50/p95/p99 latency {:.0}/{:.0}/{:.0} us; pool reuse hits {}",
        num("completed"),
        num("steps"),
        num("occupancy"),
        num("churn_per_step"),
        num("max_batch_observed"),
        num("cache_hit_rate"),
        num("evictions"),
        num("rewarms"),
        num("p50_us"),
        num("p95_us"),
        num("p99_us"),
        num("pool_reuse_hits"),
    );
    Ok(())
}
