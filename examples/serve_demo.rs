//! Serving quickstart: dynamic batching with per-session state.
//!
//! Starts an [`echo_serve::Engine`], drives a handful of concurrent
//! "conversations" (each greedily decoding from its own prompt), and
//! prints the engine's coalescing / cache / pool counters. Run with:
//!
//! ```text
//! cargo run --release -p echo-serve --example serve_demo
//! ```

use echo_models::WordLmHyper;
use echo_rnn::LstmBackend;
use echo_serve::{Engine, ServeConfig, ServeError};
use std::time::Duration;

fn main() -> Result<(), ServeError> {
    let vocab = 50;
    let engine = Engine::start(
        WordLmHyper::tiny(vocab, LstmBackend::Default),
        42,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            queue_capacity: 64,
            workers: 2,
            session_capacity: 8,
            ..ServeConfig::default()
        },
    )?;
    println!(
        "engine up: {} inference plans (B = 1..={}), arena bytes per plan: {:?}",
        engine.plans().len(),
        engine.plans().len(),
        engine
            .plans()
            .iter()
            .map(|p| p.arena_bytes())
            .collect::<Vec<_>>(),
    );

    // Four concurrent sessions, each greedily decoding 12 tokens from its
    // own prompt. Threads share the engine by reference; the engine
    // batches whatever arrives inside the wait window.
    let decode_len = 12;
    std::thread::scope(|scope| {
        let engine = &engine;
        for session in 0..4u64 {
            scope.spawn(move || {
                let mut token = (session * 13 % vocab as u64) as u32;
                let mut decoded = vec![token];
                for _ in 0..decode_len {
                    let out = loop {
                        match engine.step(session, token) {
                            Ok(out) => break out,
                            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("decode failed: {e}"),
                        }
                    };
                    token = out.argmax();
                    decoded.push(token);
                }
                println!("session {session}: {decoded:?}");
            });
        }
    });

    let stats = engine.stats();
    println!(
        "served {} tokens in {} batches (mean batch {:.2}, max {}); \
         cache {} hits / {} misses, {} evictions, {} re-warms; \
         pool {} takes / {} reuse hits",
        stats.completed,
        stats.batches,
        stats.mean_batch(),
        stats.max_batch_observed,
        stats.cache_hits,
        stats.cache_misses,
        stats.evictions,
        stats.rewarms,
        stats.pool_takes,
        stats.pool_reuse_hits,
    );
    Ok(())
}
