//! Offline shim for the `criterion` crate.
//!
//! A plain timing harness behind criterion's API: groups, benchmark
//! IDs, `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark is calibrated to roughly 10 ms per sample,
//! then timed over `sample_size` samples; min/mean/max are printed to
//! stdout. No statistical analysis, plots, or baselines.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 20, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_budget: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to get a
    /// measurable window and recording `sample_budget` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes ~10 ms (or a cap, for very slow routines).
        if self.iters_per_sample == 0 {
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                    self.iters_per_sample = iters;
                    break;
                }
                iters *= 2;
            }
        }
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters_per_sample: 0,
        samples: Vec::new(),
        sample_budget: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{label:<40} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples x {} iters)",
        min,
        mean,
        max,
        bencher.samples.len(),
        bencher.iters_per_sample
    );
}

/// Matches criterion's plain form: `criterion_group!(benches, f1, f2)`.
/// The `config = ...` form is not supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter(|| (0..8u64).sum::<u64>())
        });
        group.bench_function("plain_label", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
