//! Offline shim for the `crossbeam` crate.
//!
//! Two submodules are provided: `thread` (scoped threads, a thin
//! wrapper over `std::thread::scope` with crossbeam's closure-take-scope
//! signature) and `channel` (cloneable MPMC channels built on a
//! `Mutex` + `Condvar` queue with sender/receiver disconnection
//! tracking).

pub mod thread {
    /// Result of a scope: `Err` would carry a child panic payload in the
    /// real crate. The std backend re-raises child panics when the scope
    /// unwinds, so a returned value is always `Ok` here — callers that
    /// `.expect()` observe the same behavior either way.
    pub type Result<T> = std::thread::Result<T>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature, allowing nested spawns); callers that
        /// don't nest just ignore the argument.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Sending on a channel with no remaining receivers returns the
    /// message back. Like upstream crossbeam, `Debug` does not require
    /// `T: Debug` (the payload is elided).
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Receiving from an empty channel with no remaining senders fails.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.0;
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.0;
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = shared.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.0;
            let mut st = shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator: yields until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A bounded channel; capacity 0 is treated as capacity 1 rather
    /// than implementing rendezvous semantics.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(capacity.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn mpmc_fan_in_fan_out() {
        let (tx, rx) = channel::unbounded::<usize>();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            for i in 50..100 {
                tx2.send(i).unwrap();
            }
        });
        let h = std::thread::spawn(move || rx2.iter().count());
        let mine = rx.iter().count();
        assert_eq!(mine + h.join().unwrap(), 100);
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = channel::bounded::<u8>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
