//! Offline shim for the `parking_lot` crate.
//!
//! `Mutex`/`RwLock` with parking_lot's no-poisoning API, backed by the
//! std primitives. A poisoned std lock means a thread panicked while
//! holding the guard; parking_lot semantics are to carry on, so the
//! shim unwraps to the inner guard either way.

use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
