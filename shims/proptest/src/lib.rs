//! Offline shim for the `proptest` crate.
//!
//! Random testing with the `proptest!` macro surface this workspace
//! uses: range strategies, `any`, `Just`, `collection::vec`,
//! `prop_assert*`/`prop_assume`, and `ProptestConfig::with_cases`.
//! Differences from the real crate: no shrinking (a failure reports the
//! generated inputs verbatim), and the value stream is this shim's own
//! deterministic PRNG seeded from the test's module path, so failures
//! reproduce across runs. `PROPTEST_CASES` overrides the default case
//! count like upstream.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Upper bound on `prop_assume` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: cases.saturating_mul(16).max(1024),
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Outcome of one generated case; the `prop_*` macros early-return
/// these from the case closure.
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
    Fail(String),
}

/// Deterministic generator (SplitMix64) seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully-qualified test name.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub trait Strategy {
    type Value: Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, u16, u8);

macro_rules! sint_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

sint_strategies!(isize, i64, i32, i16, i8);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + rng.next_f64() as $t * (hi - lo)
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
);

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-harness macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < config.cases {
                // Generate, snapshot the case description for failure
                // reporting, then destructure into the arg patterns (the
                // body may consume the values).
                let inputs = ($($crate::Strategy::generate(&($strat), &mut rng),)*);
                let case_desc = format!("{inputs:#?}");
                let ($($arg,)*) = inputs;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest: too many `prop_assume` rejects ({rejected}) in {}",
                                stringify!($name)
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {msg}\n  case #{accepted}, inputs: {case_desc}"
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..17, b in 0u64..=4, flip in any::<bool>()) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!(usize::from(flip) <= 1);
        }

        #[test]
        fn vectors_respect_length(
            v in crate::collection::vec(0u32..100, 2..=5),
            w in crate::collection::vec(0u32..10, 4usize),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_filters(n in 0usize..50) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(n in 10usize..20) {
                prop_assert!(n < 15, "n was {n}");
            }
        }
        inner();
    }
}
