//! Offline shim for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range,
//! gen_bool}`. The generator core is xoshiro256** seeded through
//! SplitMix64 — statistically solid and deterministic per seed, but the
//! value stream intentionally makes no attempt to match the real crate.

use std::ops::{Range, RangeInclusive};

/// Seeding interface: everything in the workspace seeds from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation, so nearby seeds give unrelated streams.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&w));
            let u = rng.gen_range(5u64..=5);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[(rng.gen::<f64>() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
