//! Offline shim for the `serde` crate.
//!
//! Instead of the real crate's visitor-based data model, this shim
//! serializes through an owned JSON [`Value`] tree: `Serialize` lowers
//! a type to a `Value`, `Deserialize` raises one back. The derive
//! macros (re-exported from the local `serde_derive` shim) generate
//! those impls for named structs, tuple structs, and unit-variant
//! enums. Output is self-consistent — everything this workspace writes
//! it can read back — which is all the repository requires.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number, kept in its native width so integers round-trip
/// exactly (bytes counts in this workspace exceed `f64`'s 53-bit
/// integer range in principle).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl PartialEq for Number {
    /// Numeric equality across variants: `I64(2)` written as `"2"` parses
    /// back as `U64(2)`, and the two must still compare equal.
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (U64(a), I64(b)) | (I64(b), U64(a)) => b >= 0 && a == b as u64,
            (U64(a), F64(b)) | (F64(b), U64(a)) => b == a as f64,
            (I64(a), F64(b)) | (F64(b), I64(a)) => b == a as f64,
        }
    }
}

/// Object storage. A `BTreeMap` keeps key order deterministic so
/// serialized output is stable run to run.
pub type Map = BTreeMap<String, Value>;

#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

/// Free-function form used by generated code and by `serde_json`.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Looks up and deserializes one struct field; used by generated code.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value {
        Value::Object(map) => match map.get(name) {
            Some(v) => T::from_json_value(v).map_err(|e| Error(format!("field `{name}`: {}", e.0))),
            // A missing key deserializes like an explicit null so that
            // `Option` fields tolerate omission.
            None => T::from_json_value(&Value::Null)
                .map_err(|_| Error(format!("missing field `{name}`"))),
        },
        other => Err(Error(format!(
            "expected object with field `{name}`, got {}",
            kind_name(other)
        ))),
    }
}

/// Deserializes element `index` of a tuple struct; used by generated code.
pub fn element<T: Deserialize>(value: &Value, index: usize) -> Result<T, Error> {
    match value {
        Value::Array(items) => match items.get(index) {
            Some(v) => T::from_json_value(v),
            None => Err(Error(format!("missing tuple element {index}"))),
        },
        other => Err(Error(format!("expected array, got {}", kind_name(other)))),
    }
}

pub fn kind_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {}", kind_name(value))))
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error(format!("expected unsigned integer, got {}", kind_name(value)))
                })?;
                <$t>::try_from(raw).map_err(|_| Error(format!("{raw} overflows")))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! sint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error(format!("expected integer, got {}", kind_name(value)))
                })?;
                <$t>::try_from(raw).map_err(|_| Error(format!("{raw} overflows")))
            }
        }
    )*};
}

sint_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error(format!("expected number, got {}", kind_name(value))))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error(format!("expected string, got {}", kind_name(value))))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error(format!("expected array, got {}", kind_name(other)))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![to_value(&self.0), to_value(&self.1)])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
            )),
            other => Err(Error(format!(
                "expected 2-element array, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            to_value(&self.0),
            to_value(&self.1),
            to_value(&self.2),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
                C::from_json_value(&items[2])?,
            )),
            other => Err(Error(format!(
                "expected 3-element array, got {}",
                kind_name(other)
            ))),
        }
    }
}

/// Serializes a map key: JSON object keys must be strings, so the key's
/// own serialization must produce one (strings and unit-enum variants do).
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_json_value() {
        Value::String(s) => s,
        other => panic!(
            "map key must serialize to a string, got {}",
            kind_name(&other)
        ),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), to_value(v)))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| {
                    let key = K::from_json_value(&Value::String(k.clone()))?;
                    Ok((key, V::from_json_value(v)?))
                })
                .collect(),
            other => Err(Error(format!("expected object, got {}", kind_name(other)))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), to_value(v)))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| {
                    let key = K::from_json_value(&Value::String(k.clone()))?;
                    Ok((key, V::from_json_value(v)?))
                })
                .collect(),
            other => Err(Error(format!("expected object, got {}", kind_name(other)))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_json_value(&v.to_json_value()).unwrap(), v);
        }
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()).unwrap(), 1.5);
        assert_eq!(Option::<u32>::from_json_value(&Value::Null).unwrap(), None);
        let pairs = vec![(1u32, 2u64), (3, 4)];
        let back: Vec<(u32, u64)> = Deserialize::from_json_value(&pairs.to_json_value()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        let v = m.to_json_value();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let back: HashMap<String, u32> = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
