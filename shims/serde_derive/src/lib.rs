//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The real crate parses items with `syn`; neither `syn` nor `quote`
//! is available offline, so this shim walks the raw `TokenStream` by
//! hand and emits the generated impls as source text (parsed back via
//! `str::parse`). Supported shapes — the only ones this workspace
//! derives on:
//!
//! - named-field structs, honoring `#[serde(skip)]` (skipped on
//!   serialize, `Default::default()` on deserialize)
//! - tuple structs (newtypes serialize as their inner value, wider
//!   tuples as arrays)
//! - enums whose variants are all unit variants (serialized as the
//!   variant-name string)
//!
//! Generics are not supported and produce a compile error naming the
//! offending type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut lines = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                lines.push_str(&format!(
                    "map.insert(::std::string::String::from(\"{0}\"), \
                     ::serde::to_value(&self.{0}));\n",
                    f.name
                ));
            }
            format!(
                "let mut map = ::serde::Map::new();\n{lines}\
                 ::serde::Value::Object(map)"
            )
        }
        Shape::Tuple(1) => "::serde::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{}::{v} => \"{v}\"", item.name))
                .collect();
            format!(
                "::serde::Value::String(::std::string::String::from(match self {{\n{}\n}}))",
                arms.join(",\n")
            )
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        item.name
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        format!("{0}: ::serde::field(value, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{\n{}\n}})",
                inits.join(",\n")
            )
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(value)?))"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::element(value, {i})?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{}\n,\n\
                 other => ::std::result::Result::Err(::serde::Error(format!(\n\
                 \"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 other => ::std::result::Result::Err(::serde::Error(format!(\n\
                 \"expected string for {name}, got {{}}\", ::serde::kind_name(other)))),\n}}",
                arms.join(",\n")
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Field {
    name: String,
    skip: bool,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility ahead of the item keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            other => panic!("serde_derive: unexpected token before item keyword: {other:?}"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde_derive: expected item body for `{name}`, got {other:?}"),
    };

    let shape = match (kind.as_str(), group.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(group.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(group.stream())),
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(group.stream(), &name)),
        other => panic!("serde_derive: unsupported item shape for `{name}`: {other:?}"),
    };
    Item { name, shape }
}

/// Parses `{ attr* vis? name: Type, ... }`, detecting `#[serde(skip)]`.
/// Commas inside generic arguments (`HashMap<K, V>`) are skipped by
/// tracking angle-bracket depth — generics are token soup, not groups.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Attributes.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                skip |= attr_is_serde_skip(g.stream());
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Consume the type up to the next depth-0 comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    fields + usize::from(pending)
}

/// Parses `{ attr* Name, attr* Name = disc, ... }`; any variant payload
/// is a hard error since data-carrying variants have no obvious JSON
/// mapping in this shim.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name in `{enum_name}`, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip the discriminant expression.
                i += 1;
                while let Some(tok) = tokens.get(i) {
                    i += 1;
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum `{enum_name}` variant `{name}` carries data; \
                 only unit variants are supported"
            ),
            other => panic!("serde_derive: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(name);
    }
    variants
}
