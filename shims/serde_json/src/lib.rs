//! Offline shim for the `serde_json` crate.
//!
//! Text encoding/decoding for the `serde` shim's [`Value`] tree:
//! `to_string`/`to_string_pretty` render, `from_str` parses, and the
//! [`json!`] macro builds `Value`s from object/array literals whose
//! values are arbitrary `Serialize` expressions. Floats are rendered
//! with Rust's shortest round-trip formatting, so `f64` values survive
//! a write/read cycle exactly.

pub use serde::{to_value, Error, Map, Number, Value};
use serde::{Deserialize, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

/// Builds a [`Value`] from a JSON-shaped literal. Object and array
/// literals nest; leaf values may be any `Serialize` expression. The
/// grammar is recognized with the token-tree muncher technique the real
/// macro uses; object keys must be string literals here.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };

    // Array elements, accumulated into `[$elems,]`. Literal/object/array
    // heads recurse; anything else is taken as an expression up to the
    // next top-level comma.
    (@array [$($elems:expr,)*]) => { ::std::vec![$($elems,)*] };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($inner)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($inner)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };

    // Object entries: munch a `"key":` then dispatch on the value shape.
    (@object $object:ident () ()) => {};
    (@object $object:ident () ($key:literal : $($rest:tt)+)) => {
        $crate::json_internal!(@value $object ($key) ($($rest)+))
    };
    (@value $object:ident ($key:literal) (null $(, $($rest:tt)*)?)) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!(null));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@value $object:ident ($key:literal) (true $(, $($rest:tt)*)?)) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!(true));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@value $object:ident ($key:literal) (false $(, $($rest:tt)*)?)) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!(false));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@value $object:ident ($key:literal) ([$($inner:tt)*] $(, $($rest:tt)*)?)) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!([$($inner)*]));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@value $object:ident ($key:literal) ({$($inner:tt)*} $(, $($rest:tt)*)?)) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!({$($inner)*}));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@value $object:ident ($key:literal) ($value:expr , $($rest:tt)*)) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!($value));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@value $object:ident ($key:literal) ($value:expr)) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!($value));
    };
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = Parser::new(text).parse_document()?;
    T::from_json_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // `{}` on f64 is shortest-round-trip; force a decimal point
            // so the value re-parses as a float, not an integer.
            let text = v.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/inf; match serde_json and write null.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters"));
        }
        Ok(value)
    }

    fn error(&self, msg: &str) -> Error {
        Error(format!("json parse at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("surrogate \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input was a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid utf-8"))?,
                    );
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let number = if is_float {
            Number::F64(text.parse().map_err(|_| self.error("invalid float"))?)
        } else if text.starts_with('-') {
            Number::I64(text.parse().map_err(|_| self.error("invalid integer"))?)
        } else {
            Number::U64(text.parse().map_err(|_| self.error("invalid integer"))?)
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_round_trips() {
        let doc = json!({
            "name": "echo",
            "nested": [1u64, 2, 3],
            "ratio": 1.5f64,
            "flag": true,
            "nothing": Option::<u32>::None,
        });
        for text in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn float_formatting_survives_reparse() {
        for v in [0.1, 1.0, -3.25e-9, 1e20, 123456789.12345679] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "a\"b\\c\nd\té€🚀\u{1}";
        let text = to_string(&tricky.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, tricky);
    }

    #[test]
    fn value_queries_work() {
        let v: Value = from_str(r#"{"a": {"b": 2.5}, "n": -4}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("b")).and_then(Value::as_f64),
            Some(2.5)
        );
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(-4));
    }

    #[test]
    fn big_integers_round_trip_exactly() {
        let v = u64::MAX - 1;
        let back: u64 = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
