//! Cross-crate property tests: the Echo pipeline's safety invariants hold
//! for randomized model shapes, not just the hand-picked configurations.

use echo::{EchoCompiler, EchoConfig};
use echo_data::{NmtBatch, ParallelCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel};
use proptest::prelude::*;
use std::sync::Arc;

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(8 << 30, 0, 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any (small) model shape: the compiled plan trains bit-exactly
    /// and never enlarges the footprint.
    #[test]
    fn echo_is_always_safe(
        hidden in 8usize..40,
        tgt_len in 3usize..10,
        src_len in 4usize..12,
        batch in 2usize..6,
        seed in 0u64..500,
    ) {
        let mut hyper = NmtHyper::tiny(60, 50);
        hyper.hidden = hidden;
        hyper.embed = (hidden / 2).max(4);
        hyper.src_len = src_len;
        hyper.tgt_len = tgt_len;
        hyper.attention_layer_norm = seed % 2 == 0;
        let model = NmtModel::build(hyper);
        let corpus = ParallelCorpus::synthetic(
            Vocab::new(60),
            Vocab::new(50),
            batch * 2,
            3..=src_len.min(8),
            seed,
        );
        let batch_data = NmtBatch::bucketed(corpus.pairs(), batch).remove(0);
        let bindings = model.bindings(&batch_data);

        let compiled = EchoCompiler::new(EchoConfig::default())
            .compile(&model.graph, &bindings, &model.param_shapes(), &[model.loss, model.logits])
            .expect("compile");

        let run = |plan: StashPlan| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&model.graph), plan, m.clone());
            model.bind_params(&mut exec, seed).expect("bind");
            let stats = exec
                .train_step(&bindings, model.loss, ExecOptions::default(), None)
                .expect("step");
            let mut param_ids: Vec<_> = model.param_shapes().keys().copied().collect();
            param_ids.sort();
            let grads: Vec<Vec<f32>> = param_ids
                .iter()
                .map(|&p| exec.grad(p).expect("grad").data().to_vec())
                .collect();
            (stats.loss.unwrap(), grads, m.peak_bytes())
        };
        let (loss_a, grads_a, peak_a) = run(StashPlan::stash_all());
        let (loss_b, grads_b, peak_b) = run(compiled.plan.clone());

        prop_assert_eq!(loss_a, loss_b);
        prop_assert_eq!(grads_a, grads_b);
        prop_assert!(peak_b <= peak_a, "echo peak {} > baseline {}", peak_b, peak_a);
        // With more than one decoder step something should be recomputed.
        if compiled.plan.recompute_count() > 0 {
            prop_assert!(peak_b < peak_a);
        }
    }

    /// The symbolic plane reproduces the numeric plane's peak memory for
    /// arbitrary shapes and plans.
    #[test]
    fn planes_always_agree_on_memory(
        hidden in 8usize..32,
        tgt_len in 3usize..8,
        echo in any::<bool>(),
        seed in 0u64..200,
    ) {
        let mut hyper = NmtHyper::tiny(60, 50);
        hyper.hidden = hidden;
        hyper.embed = 8;
        hyper.src_len = 6;
        hyper.tgt_len = tgt_len;
        let model = NmtModel::build(hyper);
        let corpus = ParallelCorpus::synthetic(Vocab::new(60), Vocab::new(50), 8, 3..=6, seed);
        let batch_data = NmtBatch::bucketed(corpus.pairs(), 4).remove(0);
        let bindings = model.bindings(&batch_data);
        let plan = if echo {
            EchoCompiler::new(EchoConfig::default())
                .compile(&model.graph, &bindings, &model.param_shapes(), &[model.loss, model.logits])
                .expect("compile")
                .plan
        } else {
            StashPlan::stash_all()
        };
        let peak = |numeric: bool| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&model.graph), plan.clone(), m.clone());
            if numeric {
                model.bind_params(&mut exec, seed).expect("bind");
            } else {
                model.bind_param_shapes(&mut exec).expect("bind");
            }
            exec.train_step(
                &bindings,
                model.loss,
                ExecOptions { training: true, numeric },
                None,
            )
            .expect("step");
            m.peak_bytes()
        };
        prop_assert_eq!(peak(true), peak(false));
    }
}

/// Chen-style plans exercise *recursive* segment replay (a dropped node's
/// boundary input may itself be dropped in another segment); the executor
/// must stay bit-exact there too, for arbitrary strides.
#[test]
fn chen_plans_are_bit_exact_for_any_stride() {
    let corpus = ParallelCorpus::synthetic(Vocab::new(70), Vocab::new(60), 16, 4..=8, 77);
    let model = NmtModel::build(NmtHyper::tiny(70, 60));
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
    let bindings = model.bindings(&batch);
    let shapes =
        echo::analysis::infer_shapes(&model.graph, &bindings, &model.param_shapes()).unwrap();

    let run = |plan: StashPlan| {
        let m = mem();
        let mut exec = Executor::new(Arc::clone(&model.graph), plan, m.clone());
        model.bind_params(&mut exec, 13).unwrap();
        let stats = exec
            .train_step(&bindings, model.loss, ExecOptions::default(), None)
            .unwrap();
        (stats.loss.unwrap(), m.peak_bytes())
    };
    let (base_loss, base_peak) = run(StashPlan::stash_all());
    for stride in [3usize, 7, 20, 60] {
        let (plan, _) =
            echo::chen_sqrt_plan(&model.graph, &shapes, &[model.loss, model.logits], stride);
        let (loss, peak) = run(plan);
        assert_eq!(base_loss, loss, "stride {stride}");
        assert!(peak <= base_peak, "stride {stride}: {peak} > {base_peak}");
    }
}
