//! The data-parallel headline invariant: for the same global batch,
//! seed, and optimizer, training with `K ∈ {1, 2, 4}` replicas is
//! **bit-exact** equal to the serial micro-batch reference — per-step
//! losses, gradient norms, and every final parameter — with the Echo
//! pass both off (stash-all) and on, and under a recomputation-heavy
//! Chen √N plan (so segment replays are also covered by the invariant).

use echo::analysis::infer_shapes;
use echo::{chen_sqrt_plan, sqrt_stride, EchoCompiler, EchoConfig};
use echo_data::{BpttBatches, LmBatch, LmCorpus, Vocab};
use echo_graph::{Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{
    DataParallelOptions, MicrobatchTrainer, ParallelTrainer, Sgd, WordLm, WordLmHyper,
};
use echo_rnn::LstmBackend;
use std::sync::Arc;

const LANES: usize = 8;
const MICRO: usize = 4;
const STEPS: usize = 2;
const PARAM_SEED: u64 = 11;

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(1 << 30, 0, 0.0)
}

fn model() -> WordLm {
    WordLm::build(WordLmHyper::tiny(40, LstmBackend::CuDnn))
}

fn batches(lm: &WordLm) -> Vec<LmBatch> {
    let corpus = LmCorpus::synthetic(Vocab::new(40), 2400, 0.9, 7);
    BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(STEPS)
        .collect()
}

fn optimizer() -> Sgd {
    Sgd::new(0.5).with_momentum(0.9).with_clip_norm(5.0)
}

fn template(lm: &WordLm, plan: &StashPlan) -> Executor {
    let mut exec = Executor::new(Arc::clone(&lm.graph), plan.clone(), mem());
    lm.bind_params(&mut exec, PARAM_SEED).expect("bind");
    exec
}

/// The stash plans the invariant must hold under: Echo off, the Echo
/// pass's own output for this graph, and a Chen √N plan that forces
/// genuine segment replays during backward.
fn plans(lm: &WordLm) -> Vec<(&'static str, StashPlan)> {
    let compiled = EchoCompiler::new(EchoConfig::default())
        .compile(
            &lm.graph,
            &lm.symbolic_bindings(LANES / MICRO),
            &lm.param_shapes(),
            &[lm.loss, lm.logits],
        )
        .expect("echo compile");
    let shapes = infer_shapes(
        &lm.graph,
        &lm.symbolic_bindings(LANES / MICRO),
        &lm.param_shapes(),
    )
    .expect("shapes");
    let (chen, _) = chen_sqrt_plan(
        &lm.graph,
        &shapes,
        &[lm.loss, lm.logits],
        sqrt_stride(&lm.graph),
    );
    vec![
        ("echo-off", StashPlan::stash_all()),
        ("echo-on", compiled.plan),
        ("chen-sqrt", chen),
    ]
}

/// Runs the serial micro-batch reference and returns its per-step
/// fingerprints plus final parameters.
fn serial_run(lm: &WordLm, plan: &StashPlan) -> (Vec<(u32, u64)>, Vec<Vec<u32>>) {
    let mut trainer = MicrobatchTrainer::for_word_lm(
        lm,
        template(lm, plan),
        LANES,
        MICRO,
        Box::new(optimizer()),
        None,
    )
    .expect("serial trainer");
    let mut fingerprints = Vec::new();
    for batch in batches(lm) {
        let report = trainer.step(&batch).expect("serial step");
        fingerprints.push((report.loss.to_bits(), report.grad_norm.to_bits()));
    }
    (fingerprints, param_bits(&trainer.export_params()))
}

fn param_bits(params: &[(echo_graph::NodeId, echo_tensor::Tensor)]) -> Vec<Vec<u32>> {
    params
        .iter()
        .map(|(_, t)| t.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn parallel_training_is_bit_exact_for_every_replica_count() {
    let lm = model();
    for (plan_name, plan) in plans(&lm) {
        let (serial_fp, serial_params) = serial_run(&lm, &plan);
        for replicas in [1usize, 2, 4] {
            let mut trainer = ParallelTrainer::for_word_lm(
                &lm,
                &template(&lm, &plan),
                LANES,
                &DataParallelOptions::new(replicas, MICRO),
                Box::new(optimizer()),
            )
            .expect("parallel trainer");
            let mut saw_replays = 0u64;
            for (step, batch) in batches(&lm).iter().enumerate() {
                let report = trainer.step(batch);
                saw_replays += report.replicas.iter().map(|r| r.replays).sum::<u64>();
                assert_eq!(
                    (report.loss.to_bits(), report.grad_norm.to_bits()),
                    serial_fp[step],
                    "{plan_name}: step {step} diverged at K={replicas} \
                     (loss {} vs serial)",
                    report.loss,
                );
            }
            // Every replica must hold the exact serial parameters — the
            // broadcast keeps the fleet in lockstep.
            for r in 0..replicas {
                assert_eq!(
                    param_bits(&trainer.export_replica_params(r)),
                    serial_params,
                    "{plan_name}: K={replicas} replica {r} parameters diverged"
                );
            }
            // The Chen plan must actually exercise recomputation, or the
            // replay half of the invariant is vacuous.
            if plan_name == "chen-sqrt" {
                assert!(saw_replays > 0, "chen plan produced no replays");
            }
        }
    }
}

/// Degenerate-but-legal configurations stay well-behaved, and illegal
/// ones fail fast with a diagnostic instead of deadlocking the fleet.
#[test]
fn parallel_trainer_rejects_unsupported_layouts() {
    let lm = model();
    let plan = StashPlan::stash_all();
    // 8 replicas over 4 leaves cannot own aligned subtrees.
    let err = ParallelTrainer::for_word_lm(
        &lm,
        &template(&lm, &plan),
        LANES,
        &DataParallelOptions::new(8, MICRO),
        Box::new(optimizer()),
    )
    .err()
    .expect("must reject");
    assert!(err.contains("replicas"), "unhelpful error: {err}");
    // 3 micro-batches are not a power of two.
    let err = ParallelTrainer::for_word_lm(
        &lm,
        &template(&lm, &plan),
        LANES,
        &DataParallelOptions::new(1, 3),
        Box::new(optimizer()),
    )
    .err()
    .expect("must reject");
    assert!(err.contains("power of two"), "unhelpful error: {err}");
}
