//! Cross-crate integration: the full Echo pipeline from corpus to
//! compiled, trained model — data → graph → compiler pass → dual-plane
//! executor → optimizer → metrics.

use echo::{EchoCompiler, EchoConfig};
use echo_data::{BpttBatches, LmCorpus, NmtBatch, ParallelCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{perplexity, NmtHyper, NmtModel, Sgd, WordLm, WordLmHyper};
use echo_rnn::LstmBackend;
use std::sync::Arc;

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(8 << 30, 0, 0.0)
}

/// The repository's headline invariant: compiling with Echo changes
/// nothing about learning and everything about memory.
#[test]
fn compiled_nmt_trains_bit_exactly_with_smaller_footprint() {
    let corpus = ParallelCorpus::synthetic(Vocab::new(80), Vocab::new(70), 120, 4..=10, 9);
    let model = NmtModel::build(NmtHyper::tiny(80, 70));
    let batches = NmtBatch::bucketed(corpus.pairs(), 8);
    let compiled = EchoCompiler::new(EchoConfig::default())
        .compile(
            &model.graph,
            &model.bindings(&batches[0]),
            &model.param_shapes(),
            &[model.loss, model.logits],
        )
        .expect("compile");
    assert_eq!(
        compiled.report.segments.len(),
        model.hyper.decoder_steps(),
        "one O-shape segment per decoder step"
    );

    let run = |plan: StashPlan| {
        let m = mem();
        let mut exec = Executor::new(Arc::clone(&model.graph), plan, m.clone());
        model.bind_params(&mut exec, 31).expect("bind");
        let mut sgd = Sgd::new(0.5).with_clip_norm(5.0);
        let mut losses = Vec::new();
        for _ in 0..2 {
            for batch in batches.iter().take(4) {
                let stats = exec
                    .train_step(
                        &model.bindings(batch),
                        model.loss,
                        ExecOptions::default(),
                        None,
                    )
                    .expect("step");
                losses.push(stats.loss.unwrap());
                sgd.step(&mut exec);
            }
        }
        (losses, m.peak_bytes())
    };

    let (loss_base, peak_base) = run(StashPlan::stash_all());
    let (loss_echo, peak_echo) = run(compiled.plan.clone());
    assert_eq!(
        loss_base, loss_echo,
        "multi-step training must be bit-exact"
    );
    assert!(
        (peak_echo as f64) < peak_base as f64 * 0.9,
        "echo peak {peak_echo} vs baseline {peak_base}"
    );
}

/// The LM path: every backend trains, learns, and agrees numerically.
#[test]
fn word_lm_learns_on_every_backend() {
    let vocab = Vocab::new(40);
    let corpus = LmCorpus::synthetic(vocab, 4000, 0.95, 17);
    for backend in LstmBackend::ALL {
        let lm = WordLm::build(WordLmHyper::tiny(vocab.size(), backend));
        let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
        lm.bind_params(&mut exec, 3).expect("bind");
        let mut sgd = Sgd::new(0.5).with_clip_norm(5.0);
        let mut first = None;
        let mut last = 0.0;
        for _epoch in 0..2 {
            let batches = BpttBatches::new(corpus.tokens(), 8, lm.hyper.seq_len);
            for batch in batches {
                let stats = exec
                    .train_step(&lm.bindings(&batch), lm.loss, ExecOptions::default(), None)
                    .expect("step");
                last = stats.loss.unwrap();
                first.get_or_insert(last);
                sgd.step(&mut exec);
            }
        }
        assert!(
            perplexity(last) < perplexity(first.unwrap()),
            "{backend}: perplexity must fall"
        );
    }
}

/// The pass is a no-op where there is nothing O-shaped: a pure LSTM LM
/// has no recomputation opportunity that passes the ratio test.
#[test]
fn echo_pass_leaves_pure_lstm_alone() {
    let lm = WordLm::build(WordLmHyper::tiny(60, LstmBackend::CuDnn));
    let compiled = EchoCompiler::new(EchoConfig::default())
        .compile(
            &lm.graph,
            &lm.symbolic_bindings(8),
            &lm.param_shapes(),
            &[lm.loss, lm.logits],
        )
        .expect("compile");
    assert_eq!(
        compiled.plan.recompute_count(),
        0,
        "no O-shape segments in an LM: {:?}",
        compiled.report.segments
    );
}

/// Symbolic and numeric planes agree on the memory story.
#[test]
fn planes_agree_on_peak_memory() {
    let model = NmtModel::build(NmtHyper::tiny(80, 70));
    let corpus = ParallelCorpus::synthetic(Vocab::new(80), Vocab::new(70), 16, 4..=10, 9);
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
    let bindings = model.bindings(&batch);
    let peak = |numeric: bool| {
        let m = mem();
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), m.clone());
        if numeric {
            model.bind_params(&mut exec, 1).expect("bind");
        } else {
            model.bind_param_shapes(&mut exec).expect("bind");
        }
        exec.train_step(
            &bindings,
            model.loss,
            ExecOptions {
                training: true,
                numeric,
            },
            None,
        )
        .expect("step");
        m.peak_bytes()
    };
    assert_eq!(peak(true), peak(false));
}

/// Inference keeps no feature maps at all: its footprint is far below
/// training's, whatever the plan (the paper's optimizations also apply to
/// inference, §4.2).
#[test]
fn inference_footprint_is_far_below_training() {
    let corpus = ParallelCorpus::synthetic(Vocab::new(80), Vocab::new(70), 16, 4..=10, 9);
    let model = NmtModel::build(NmtHyper::tiny(80, 70));
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
    let bindings = model.bindings(&batch);

    let peak = |training: bool| {
        let m = mem();
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), m.clone());
        model.bind_params(&mut exec, 4).expect("bind");
        if training {
            exec.train_step(&bindings, model.loss, ExecOptions::default(), None)
                .expect("step");
        } else {
            exec.forward(
                &bindings,
                model.logits,
                ExecOptions {
                    training: false,
                    numeric: true,
                },
                None,
            )
            .expect("forward");
        }
        m.peak_bytes()
    };
    let train_peak = peak(true);
    let infer_peak = peak(false);
    assert!(
        (infer_peak as f64) < train_peak as f64 * 0.6,
        "inference {infer_peak} vs training {train_peak}"
    );
}
