//! GIR round-trip and fusion launch-table tests.
//!
//! Two contracts from the pass-pipeline ISSUE: (1) lifting a graph into
//! the GIR and lowering it back to launch-level `ExecPlan` tables is the
//! identity on launch semantics, even through an id-preserving rewrite
//! cycle; (2) the fusion passes shrink the word-LM (Default backend)
//! forward launch table by at least 25%, with every pipeline stage
//! reporting a trace whose equivalence check passed.

use echo::{EchoCompiler, EchoConfig};
use echo_graph::gir::Rewrite;
use echo_graph::{ExecOptions, ExecPlan, Gir, NodeId, NodeKind, StashPlan};
use echo_models::{WordLm, WordLmHyper};
use echo_rnn::LstmBackend;
use echo_tensor::Shape;
use std::collections::HashMap;
use std::sync::Arc;

fn word_lm() -> WordLm {
    WordLm::build(WordLmHyper::tiny(30, LstmBackend::Default))
}

fn binding_shapes(lm: &WordLm, batch: usize) -> HashMap<NodeId, Shape> {
    lm.symbolic_bindings(batch)
        .iter()
        .map(|(&id, t)| (id, t.shape().clone()))
        .collect()
}

#[test]
fn gir_round_trip_preserves_launch_semantics() {
    let lm = word_lm();
    let bindings = binding_shapes(&lm, 4);
    let params = lm.param_shapes();
    let mut gir =
        Gir::from_graph(Arc::clone(&lm.graph), &bindings, &params, &[lm.loss]).expect("gir lifts");
    // Force an actual rebuild cycle through the public rewrite API: an
    // identity rewrite of the loss node re-creates every node, so the
    // lowered plan exercises the id-preservation contract, not Arc
    // sharing.
    let NodeKind::Op { op, inputs } = &lm.graph.nodes()[lm.loss.index()].kind else {
        panic!("loss is an op node");
    };
    gir.apply_rewrites(vec![Rewrite {
        id: lm.loss,
        op: Arc::clone(op),
        inputs: inputs.clone(),
    }])
    .expect("identity rewrite applies");
    assert!(
        !Arc::ptr_eq(&lm.graph, gir.graph()),
        "rewrite must rebuild the graph"
    );

    let lower = |graph: &echo_graph::Graph| {
        ExecPlan::build(
            graph,
            &StashPlan::stash_all(),
            ExecOptions::default(),
            &bindings,
            &params,
            lm.loss,
        )
        .expect("plan lowers")
    };
    let direct = lower(&lm.graph);
    let round_tripped = lower(gir.graph());
    assert_eq!(direct.launch_count(), round_tripped.launch_count());
    assert_eq!(
        direct.forward_launch_count(),
        round_tripped.forward_launch_count()
    );
    assert_eq!(direct.slot_count(), round_tripped.slot_count());
    assert_eq!(
        direct.planned_peak_bytes(),
        round_tripped.planned_peak_bytes()
    );
    assert_eq!(
        direct.planned_step_flops(),
        round_tripped.planned_step_flops()
    );
}

#[test]
fn fusion_shrinks_word_lm_forward_launch_table_by_a_quarter() {
    let lm = word_lm();
    let compile = |fusion: bool| {
        EchoCompiler::new(EchoConfig {
            fusion,
            cse: fusion,
            ..EchoConfig::default()
        })
        .compile(
            &lm.graph,
            &lm.symbolic_bindings(4),
            &lm.param_shapes(),
            &[lm.loss],
        )
        .expect("compiles")
    };
    let unfused = compile(false);
    let fused = compile(true);
    assert!(unfused.graph.is_none(), "no rewrite without fusion");
    assert!(fused.graph.is_some(), "fusion rewrites the word-LM graph");

    let unfused_fwd = unfused
        .exec_plan
        .as_ref()
        .expect("plan")
        .forward_launch_count();
    let fused_fwd = fused
        .exec_plan
        .as_ref()
        .expect("plan")
        .forward_launch_count();
    assert!(
        fused_fwd * 4 <= unfused_fwd * 3,
        "fusion must cut the forward launch table by >= 25%: {fused_fwd} vs {unfused_fwd}"
    );

    // Every pipeline stage traced, every equivalence check green, and the
    // fusion stages account for the launch reduction.
    let passes = &fused.report.passes;
    let names: Vec<&str> = passes.iter().map(|p| p.pass.as_str()).collect();
    assert_eq!(
        names,
        [
            "cse",
            "fuse-lstm-cell",
            "fuse-ewise-chain",
            "stash-select",
            "lower"
        ],
        "pipeline stage order"
    );
    assert!(passes.iter().all(|p| p.equivalence_ok), "{passes:?}");
    assert!(passes.iter().all(|p| p.bit_exact), "{passes:?}");
    let cell = passes.iter().find(|p| p.pass == "fuse-lstm-cell").unwrap();
    assert!(cell.rewrites > 0, "cell fusion fires on the Default LSTM");
    assert!(
        cell.fwd_launches_after < cell.fwd_launches_before,
        "{cell:?}"
    );
    assert!(
        passes.iter().all(|p| p.wall_us >= 0.0),
        "wall time recorded"
    );
}
