//! Training must not depend on which GEMM backend executes it.
//!
//! The dispatch layer (`echo_tensor::policy`) may route a matmul to the
//! naive, blocked, or packed-parallel kernel — by static tier or by the
//! one-shot autotune microbenchmark. Because every backend is
//! bit-identical (see `crates/tensor/tests/gemm_bitexact.rs`), a
//! `word_lm` train step must produce **bit-identical** losses, gradient
//! norms, and parameters under any `MatmulPolicy`. This is the
//! end-to-end half of the contract: if a kernel ever reorders an FP
//! accumulation, this test catches it at the training-loop level.
//!
//! One `#[test]`, not several: the policy is process-global state and
//! the harness runs `#[test]`s concurrently, so the sweep must iterate
//! policies sequentially inside a single test (this file is its own
//! integration-test binary, i.e. its own process).

use echo_data::{BpttBatches, LmBatch, LmCorpus, Vocab};
use echo_graph::{Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{MicrobatchTrainer, Sgd, WordLm, WordLmHyper};
use echo_rnn::LstmBackend;
use echo_tensor::{
    available_micro_kernels, set_matmul_policy, set_micro_kernel, MatmulBackend, MatmulPolicy,
};
use std::sync::Arc;

const LANES: usize = 8;
const MICRO: usize = 2;
const STEPS: usize = 2;
const PARAM_SEED: u64 = 23;

fn batches(lm: &WordLm) -> Vec<LmBatch> {
    let corpus = LmCorpus::synthetic(Vocab::new(40), 2400, 0.9, 7);
    BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(STEPS)
        .collect()
}

/// Per-step `(loss bits, grad-norm bits)` plus final parameter bits.
type Fingerprint = (Vec<(u32, u64)>, Vec<Vec<u32>>);

/// Trains `STEPS` steps under the given policy and fingerprints every
/// observable number: per-step loss and gradient-norm bits, plus the
/// bits of every final parameter.
fn run_under_policy(lm: &WordLm, policy: MatmulPolicy) -> Fingerprint {
    set_matmul_policy(policy);
    let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem);
    lm.bind_params(&mut exec, PARAM_SEED).expect("bind");
    let mut trainer = MicrobatchTrainer::for_word_lm(
        lm,
        exec,
        LANES,
        MICRO,
        Box::new(Sgd::new(0.5).with_momentum(0.9).with_clip_norm(5.0)),
        None,
    )
    .expect("trainer");
    let mut fingerprints = Vec::new();
    for batch in batches(lm) {
        let report = trainer.step(&batch).expect("step");
        fingerprints.push((report.loss.to_bits(), report.grad_norm.to_bits()));
    }
    let params = trainer
        .export_params()
        .iter()
        .map(|(_, t)| t.data().iter().map(|v| v.to_bits()).collect())
        .collect();
    (fingerprints, params)
}

#[test]
fn word_lm_training_is_bit_identical_under_every_matmul_policy() {
    let lm = WordLm::build(WordLmHyper::tiny(40, LstmBackend::CuDnn));
    let policies = [
        MatmulPolicy::Fixed(MatmulBackend::Naive),
        MatmulPolicy::Fixed(MatmulBackend::Blocked),
        MatmulPolicy::Fixed(MatmulBackend::PackedParallel),
        MatmulPolicy::Auto,
    ];
    // The outer sweep forces each available SIMD micro-kernel (scalar
    // everywhere; AVX2/NEON where the host supports them) through the
    // same policy grid: the packed tier must produce the same training
    // bits whichever variant executes it.
    let mut reference: Option<Fingerprint> = None;
    for kernel in available_micro_kernels() {
        assert!(
            set_micro_kernel(Some(kernel)),
            "{} reported available but refused to install",
            kernel.name()
        );
        for &policy in &policies {
            let (fp, params) = run_under_policy(&lm, policy);
            assert_eq!(fp.len(), STEPS, "training must actually run");
            match &reference {
                None => reference = Some((fp, params)),
                Some((ref_fp, ref_params)) => {
                    assert_eq!(
                        &fp,
                        ref_fp,
                        "per-step loss/grad-norm bits diverged under {policy:?} with the {} kernel",
                        kernel.name()
                    );
                    assert_eq!(
                        &params,
                        ref_params,
                        "final parameter bits diverged under {policy:?} with the {} kernel",
                        kernel.name()
                    );
                }
            }
        }
    }
    set_micro_kernel(None);
    set_matmul_policy(MatmulPolicy::Auto);
}
