//! Executable versions of the paper's headline claims, run at reduced
//! scale so they are fast enough for `cargo test` (the full-scale numbers
//! come from the `echo-repro` figure binaries; see EXPERIMENTS.md).

use echo_cachesim::{simulate_gemm, CacheConfig, TiledGemmSpec};
use echo_device::DeviceSpec;
use echo_models::resnet::resnet50_throughput;
use echo_models::WordLmHyper;
use echo_repro::{pearson, run_lm, run_nmt, NmtRunConfig};
use echo_rnn::{autotune, pure_lstm_times, LstmBackend, PureLstmConfig};

/// Scaled-down Zhu setting so debug-mode symbolic runs stay quick.
fn small_zhu(backend: LstmBackend, batch: usize, echo: bool) -> NmtRunConfig {
    let mut cfg = NmtRunConfig::zhu("t", backend, batch, echo);
    cfg.hyper.src_len = 40;
    cfg.hyper.tgt_len = 40;
    cfg.hyper.src_vocab = 3000;
    cfg.hyper.tgt_vocab = 3000;
    cfg
}

/// §1/§6.2: partial forward propagation halves-ish the footprint with no
/// meaningful throughput cost, and the freed memory converts to higher
/// throughput at a doubled batch.
#[test]
fn claim_memory_halves_without_performance_loss() {
    let base = run_nmt(&small_zhu(LstmBackend::Default, 32, false)).expect("run");
    let eco = run_nmt(&small_zhu(LstmBackend::Default, 32, true)).expect("run");
    let eco_big = run_nmt(&small_zhu(LstmBackend::Default, 64, true)).expect("run");
    // Compare the profiler view: at this reduced scale the constant CUDA
    // context would otherwise dominate the nvidia-smi numbers.
    let reduction = base.peak_bytes as f64 / eco.peak_bytes as f64;
    assert!(
        reduction > 1.7,
        "memory reduction {reduction:.2}x below the paper's ~2x"
    );
    let same_batch = eco.throughput / base.throughput;
    assert!(
        same_batch > 0.9,
        "echo must not cost meaningful throughput: {same_batch:.2}x"
    );
    assert!(
        eco_big.throughput > base.throughput * 1.1,
        "doubled batch must raise throughput: {:.0} vs {:.0}",
        eco_big.throughput,
        base.throughput
    );
}

/// §3.1/Figure 4: CNN throughput saturates with batch; RNN throughput
/// keeps scaling.
#[test]
fn claim_cnn_saturates_rnn_scales() {
    let spec = DeviceSpec::titan_xp();
    let cnn_gain = resnet50_throughput(128, &spec) / resnet50_throughput(32, &spec);
    assert!(cnn_gain < 1.25, "ResNet-50 must saturate: {cnn_gain:.2}");

    let t32 = run_nmt(&small_zhu(LstmBackend::Default, 32, false)).expect("run");
    let t128 = run_nmt(&small_zhu(LstmBackend::Default, 128, false)).expect("run");
    let rnn_gain = t128.throughput / t32.throughput;
    assert!(
        rnn_gain > 2.0,
        "NMT throughput must keep scaling with batch: {rnn_gain:.2}"
    );
}

/// §4.2/Figure 9: the column-major formulation issues far fewer memory
/// transactions for the paper's skewed LSTM shapes.
#[test]
fn claim_layout_changes_memory_behaviour() {
    let l2 = CacheConfig::titan_xp_l2();
    let rm = simulate_gemm(&TiledGemmSpec::fc_row_major(64, 512, 2048), &l2);
    let cm = simulate_gemm(&TiledGemmSpec::fc_col_major(64, 512, 2048), &l2);
    assert_eq!(rm.flops, cm.flops, "identical arithmetic");
    assert!(rm.load_transactions > 2 * cm.load_transactions);
    assert!(cm.coalescing_efficiency() > 0.95);
    assert!(rm.coalescing_efficiency() < 0.5);
}

/// §6.3/Figure 20: EcoRNN beats Default substantially and cuDNN usually,
/// with cuDNN closing the gap at deep stacks.
#[test]
fn claim_pure_lstm_ordering() {
    let spec = DeviceSpec::titan_xp();
    let total = |backend, layers| {
        let mut cfg = PureLstmConfig::new(backend, 64, 512, layers);
        cfg.seq_len = 20;
        let (f, b) = pure_lstm_times(&cfg, &spec).expect("times");
        (f + b) as f64
    };
    let d1 = total(LstmBackend::Default, 1);
    let c1 = total(LstmBackend::CuDnn, 1);
    let e1 = total(LstmBackend::EcoRnn, 1);
    assert!(d1 / e1 > 1.5, "EcoRNN vs Default {:.2}", d1 / e1);
    assert!(c1 / e1 > 1.05, "EcoRNN vs CuDNN {:.2}", c1 / e1);
    // cuDNN's wavefront overlap closes the gap at 4 layers.
    let c4 = total(LstmBackend::CuDnn, 4);
    let e4 = total(LstmBackend::EcoRnn, 4);
    assert!(c4 / e4 < c1 / e1, "cuDNN must close the gap with depth");
}

/// §5.4/Table 2: the microbenchmark predicts full-model throughput.
#[test]
fn claim_microbenchmark_correlates() {
    let spec = DeviceSpec::titan_xp();
    let mut inv = Vec::new();
    let mut thpt = Vec::new();
    for &hidden in &[200usize, 650] {
        for backend in LstmBackend::ALL {
            let report = autotune(32, hidden, 2, 35, &spec).expect("autotune");
            inv.push(1.0 / report.time_of(backend).expect("time") as f64);
            let hyper = WordLmHyper::mxnet_example(3000, hidden, backend);
            thpt.push(run_lm("t", hyper, 32, &spec).expect("run").throughput);
        }
    }
    let rho = pearson(&inv, &thpt);
    assert!(rho > 0.85, "rho {rho:.3} too low (paper: 0.95+)");
}

/// §5.1/Figure 6: parallelizing SequenceReverse removes it from the
/// bottleneck list.
#[test]
fn claim_sequence_reverse_fix() {
    let mut seq = small_zhu(LstmBackend::Default, 32, false);
    seq.hyper.parallel_reverse = false;
    seq.enforce_capacity = false;
    let mut par = seq.clone();
    par.hyper.parallel_reverse = true;
    let r_seq = run_nmt(&seq).expect("run");
    let r_par = run_nmt(&par).expect("run");
    let frac = |r: &echo_repro::NmtRunResult| {
        r.trace
            .as_ref()
            .expect("trace")
            .category_fraction(echo_device::KernelCategory::SequenceReverse)
    };
    assert!(
        frac(&r_seq) > 0.2,
        "sequential reverse must dominate: {}",
        frac(&r_seq)
    );
    assert!(
        frac(&r_par) < 0.02,
        "parallel reverse must vanish: {}",
        frac(&r_par)
    );
    assert!(r_par.throughput > r_seq.throughput);
}
