//! The pipeline-parallel headline invariant: for the same global batch,
//! seed, and optimizer, GPipe-style training with `P ∈ {1, 2, 4}` stages
//! and `K ∈ {1, 2}` replicas per stage is **bit-exact** equal to the
//! serial micro-batch reference — per-step losses, gradient norms, and
//! every final parameter — under every stash-plan family (stash-all, the
//! Echo pass, a recomputation-heavy Chen √N plan, and the exact-cost
//! search), and segment replay counts match the stage-normalized serial
//! plan exactly.
//!
//! Wavefront note: pipeline stage workers execute through
//! `stage_step`/`forward_many`, which always run the legacy interpreter
//! (no ahead-of-time plan is installed on stage executors), so every
//! assertion here is independent of `ECHO_WAVEFRONT` and of the
//! executors' [`WavefrontMode`] by construction. CI re-runs this suite
//! with `ECHO_WAVEFRONT=0` and `ECHO_NUM_THREADS=4` to pin that down
//! empirically as well.

use echo::analysis::infer_shapes;
use echo::{chen_sqrt_plan, sqrt_stride, EchoCompiler, EchoConfig, StashSelection};
use echo_data::{BpttBatches, LmBatch, LmCorpus, MicrobatchPlan, NmtBatch, ParallelCorpus, Vocab};
use echo_graph::{partition_stages, ExecOptions, Executor, Gir, NodeId, StagePartition, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{
    MicrobatchTrainer, NmtHyper, NmtModel, Optimizer, PipelineOptions, PipelineTrainer, Sgd,
    WordLm, WordLmHyper,
};
use echo_rnn::LstmBackend;
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

const LANES: usize = 8;
const MICRO: usize = 4;
const STEPS: usize = 2;
const PARAM_SEED: u64 = 11;

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(1 << 30, 0, 0.0)
}

/// A 4-layer stack so `P = 4` has a genuine layer-per-stage partition.
/// The `Default` (per-step kernel) backend keeps each layer's ops
/// partitionable — the fused CuDNN op would be a single uncuttable node.
fn model() -> WordLm {
    WordLm::build(WordLmHyper {
        vocab: 30,
        embed: 8,
        hidden: 10,
        layers: 4,
        seq_len: 5,
        backend: LstmBackend::Default,
    })
}

fn batches(lm: &WordLm) -> Vec<LmBatch> {
    let corpus = LmCorpus::synthetic(Vocab::new(30), 1200, 0.9, 7);
    BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(STEPS)
        .collect()
}

fn optimizer() -> Sgd {
    Sgd::new(0.5).with_momentum(0.9).with_clip_norm(5.0)
}

fn template(lm: &WordLm, plan: &StashPlan) -> Executor {
    let mut exec = Executor::new(Arc::clone(&lm.graph), plan.clone(), mem());
    lm.bind_params(&mut exec, PARAM_SEED).expect("bind");
    exec
}

fn lm_partition(lm: &WordLm, stages: usize) -> StagePartition {
    let binding_shapes: HashMap<NodeId, Shape> = lm
        .symbolic_bindings(LANES / MICRO)
        .iter()
        .map(|(&id, t)| (id, t.shape().clone()))
        .collect();
    let gir = Gir::from_graph(
        Arc::clone(&lm.graph),
        &binding_shapes,
        &lm.param_shapes(),
        &[lm.loss],
    )
    .expect("gir");
    partition_stages(&gir, stages).expect("partition")
}

/// The stash plans the invariant must hold under: Echo off, the Echo
/// heuristic, a Chen √N plan forcing genuine replays, and the
/// exact-cost search.
fn plans(lm: &WordLm) -> Vec<(&'static str, StashPlan)> {
    let compile = |selection| {
        EchoCompiler::new(EchoConfig {
            selection,
            ..EchoConfig::default()
        })
        .compile(
            &lm.graph,
            &lm.symbolic_bindings(LANES / MICRO),
            &lm.param_shapes(),
            &[lm.loss, lm.logits],
        )
        .expect("echo compile")
        .plan
    };
    let shapes = infer_shapes(
        &lm.graph,
        &lm.symbolic_bindings(LANES / MICRO),
        &lm.param_shapes(),
    )
    .expect("shapes");
    let (chen, _) = chen_sqrt_plan(
        &lm.graph,
        &shapes,
        &[lm.loss, lm.logits],
        sqrt_stride(&lm.graph),
    );
    vec![
        ("echo-off", StashPlan::stash_all()),
        ("echo-on", compile(StashSelection::Heuristic)),
        ("chen-sqrt", chen),
        (
            "searched",
            compile(StashSelection::Search { flop_budget: 1.0 }),
        ),
    ]
}

/// Per-step fingerprints plus final parameters of one serial run.
struct SerialRef {
    /// `(loss bits, grad-norm bits)` per step.
    fps: Vec<(u32, u64)>,
    /// Segment replays per step.
    replays: Vec<u64>,
    /// Final parameter bit patterns, sorted by node id.
    params: Vec<Vec<u32>>,
}

fn serial_lm_run(lm: &WordLm, plan: &StashPlan) -> SerialRef {
    let mut trainer = MicrobatchTrainer::for_word_lm(
        lm,
        template(lm, plan),
        LANES,
        MICRO,
        Box::new(optimizer()),
        None,
    )
    .expect("serial trainer");
    let mut fps = Vec::new();
    let mut replays = Vec::new();
    for batch in batches(lm) {
        let report = trainer.step(&batch).expect("serial step");
        fps.push((report.loss.to_bits(), report.grad_norm.to_bits()));
        replays.push(report.replicas.iter().map(|r| r.replays).sum());
    }
    SerialRef {
        fps,
        replays,
        params: param_bits(&trainer.export_params()),
    }
}

fn param_bits(params: &[(NodeId, Tensor)]) -> Vec<Vec<u32>> {
    params
        .iter()
        .map(|(_, t)| t.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn pipeline_training_is_bit_exact_for_every_stage_and_replica_count() {
    let lm = model();
    let partitions: Vec<(usize, StagePartition)> = [1usize, 2, 4]
        .iter()
        .map(|&p| (p, lm_partition(&lm, p)))
        .collect();
    for (plan_name, plan) in plans(&lm) {
        let canonical = serial_lm_run(&lm, &plan);
        let mut family_replays = 0u64;
        for (stages, partition) in &partitions {
            // The stage-normalized plan (cut-interface values stashed,
            // segments split at stage boundaries) must itself be serially
            // bit-exact: stash-vs-replay decisions never change values.
            // Its replay counts are the reference the pipeline must hit.
            let normalized = serial_lm_run(&lm, &partition.normalized_plan(&plan));
            assert_eq!(
                normalized.fps, canonical.fps,
                "{plan_name}: P={stages} normalized plan diverged serially"
            );
            assert_eq!(
                normalized.params, canonical.params,
                "{plan_name}: P={stages} normalized plan parameters diverged"
            );
            for replicas in [1usize, 2] {
                let mut trainer = PipelineTrainer::for_word_lm(
                    &lm,
                    template(&lm, &plan),
                    partition,
                    &plan,
                    LANES,
                    &PipelineOptions::new(replicas, MICRO),
                    Box::new(optimizer()),
                )
                .expect("pipeline trainer");
                for (step, batch) in batches(&lm).iter().enumerate() {
                    let report = trainer.train_step(batch).expect("pipeline step");
                    assert_eq!(
                        (report.loss.to_bits(), report.grad_norm.to_bits()),
                        canonical.fps[step],
                        "{plan_name}: step {step} diverged at P={stages} K={replicas} \
                         (loss {} vs serial)",
                        report.loss,
                    );
                    // Every stage of every replica reports once, and the
                    // fleet's total replay work equals the normalized
                    // serial run exactly — recomputation is neither lost
                    // nor duplicated by the pipeline split.
                    assert_eq!(report.stages.len(), stages * replicas);
                    assert_eq!(
                        report.total_replays(),
                        normalized.replays[step],
                        "{plan_name}: P={stages} K={replicas} replay count drifted"
                    );
                    family_replays += report.total_replays();
                }
                assert_eq!(
                    param_bits(&trainer.export_params()),
                    canonical.params,
                    "{plan_name}: P={stages} K={replicas} final parameters diverged"
                );
            }
        }
        // The Chen plan must actually exercise recomputation inside the
        // pipeline, or the replay half of the invariant is vacuous.
        if plan_name == "chen-sqrt" {
            assert!(family_replays > 0, "chen plan produced no pipeline replays");
        }
    }
}

/// The compiler front door: `pipeline_stages` in [`EchoConfig`] must
/// surface a validated partition and per-stage summary, and that
/// partition must drive a bit-exact pipeline run.
#[test]
fn compiler_partition_drives_a_bit_exact_pipeline() {
    let lm = model();
    let compiled = EchoCompiler::new(EchoConfig {
        pipeline_stages: 2,
        ..EchoConfig::default()
    })
    .compile(
        &lm.graph,
        &lm.symbolic_bindings(LANES / MICRO),
        &lm.param_shapes(),
        &[lm.loss, lm.logits],
    )
    .expect("echo compile");
    let partition = compiled.partition.expect("compiler must emit a partition");
    partition.validate().expect("compiler partition validates");
    assert_eq!(partition.stage_count(), 2);
    assert_eq!(compiled.report.stages.len(), 2);
    let rendered = compiled.report.to_string();
    assert!(
        rendered.contains("stage 0"),
        "summary missing stages:\n{rendered}"
    );

    let canonical = serial_lm_run(&lm, &compiled.plan);
    let mut trainer = PipelineTrainer::for_word_lm(
        &lm,
        template(&lm, &compiled.plan),
        &partition,
        &compiled.plan,
        LANES,
        &PipelineOptions::new(1, MICRO),
        Box::new(optimizer()),
    )
    .expect("pipeline trainer");
    for (step, batch) in batches(&lm).iter().enumerate() {
        let report = trainer.train_step(batch).expect("pipeline step");
        assert_eq!(
            (report.loss.to_bits(), report.grad_norm.to_bits()),
            canonical.fps[step],
            "compiler partition diverged at step {step}"
        );
    }
    assert_eq!(param_bits(&trainer.export_params()), canonical.params);
}

// ---------------------------------------------------------------------
// NMT: the generic (non-LM) trainer entry point, with attention and an
// uncuttable decoder region — cuts must land between encoder layers.
// ---------------------------------------------------------------------

const NMT_LANES: usize = 8;
const NMT_MICRO: usize = 2;

/// 4 encoder layers so a 2-stage cut exists strictly inside the encoder;
/// the decoder's attention loop is one protected-interface region.
fn nmt_model() -> NmtModel {
    let mut hyper = NmtHyper::tiny(30, 28);
    hyper.embed = 10;
    hyper.hidden = 12;
    hyper.enc_layers = 4;
    hyper.src_len = 5;
    hyper.tgt_len = 6;
    hyper.backend = LstmBackend::Default;
    NmtModel::build(hyper)
}

fn nmt_batches() -> Vec<NmtBatch> {
    let corpus = ParallelCorpus::synthetic(Vocab::new(30), Vocab::new(28), 200, 3..=5, 5);
    let mut all = NmtBatch::bucketed(corpus.pairs(), NMT_LANES);
    all.truncate(STEPS);
    assert_eq!(all.len(), STEPS, "synthetic corpus too small");
    all
}

fn nmt_template(model: &NmtModel, plan: &StashPlan) -> Executor {
    let mut exec = Executor::new(Arc::clone(&model.graph), plan.clone(), mem());
    model.bind_params(&mut exec, PARAM_SEED).expect("bind");
    exec
}

fn nmt_plans(model: &NmtModel) -> Vec<(&'static str, StashPlan)> {
    let compiled = EchoCompiler::new(EchoConfig::default())
        .compile(
            &model.graph,
            &model.symbolic_bindings(NMT_LANES / NMT_MICRO),
            &model.param_shapes(),
            &[model.loss, model.logits],
        )
        .expect("echo compile");
    vec![
        ("echo-off", StashPlan::stash_all()),
        ("echo-on", compiled.plan),
    ]
}

/// Serial NMT reference: an independent, test-local re-statement of the
/// canonical reduction tree (balanced fold keeping the left operand,
/// then `1/M` scaling) — so trainer and spec cannot share a bug.
fn serial_nmt_run(model: &NmtModel, plan: &StashPlan) -> SerialRef {
    let mut exec = nmt_template(model, plan);
    let mut opt = optimizer();
    let mplan = MicrobatchPlan::new(NMT_LANES, NMT_MICRO).expect("plan");
    let mut fps = Vec::new();
    let mut replays = Vec::new();
    for batch in nmt_batches() {
        let mut leaves: Vec<(Vec<(NodeId, Tensor)>, f32)> = Vec::new();
        let mut step_replays = 0u64;
        for micro in mplan.cut_nmt(&batch) {
            let stats = exec
                .train_step(
                    &model.bindings(&micro),
                    model.loss,
                    ExecOptions::default(),
                    None,
                )
                .expect("serial nmt step");
            step_replays += stats.replays;
            leaves.push((exec.export_grads(), stats.loss.expect("loss")));
        }
        while leaves.len() > 1 {
            let mut next = Vec::with_capacity(leaves.len() / 2);
            let mut pairs = leaves.into_iter();
            while let (Some((mut lg, ll)), Some((rg, rl))) = (pairs.next(), pairs.next()) {
                for ((_, grad), (_, incoming)) in lg.iter_mut().zip(&rg) {
                    grad.axpy(1.0, incoming).expect("fold");
                }
                next.push((lg, ll + rl));
            }
            leaves = next;
        }
        let (mut grads, mut loss) = leaves.pop().expect("non-empty");
        let scale = 1.0 / mplan.micro() as f32;
        for (_, grad) in &mut grads {
            grad.scale_inplace(scale);
        }
        loss *= scale;
        exec.import_grads(&grads);
        let grad_norm = opt.apply(&mut exec);
        fps.push((loss.to_bits(), grad_norm.to_bits()));
        replays.push(step_replays);
    }
    SerialRef {
        fps,
        replays,
        params: param_bits(&exec.export_params()),
    }
}

#[test]
fn nmt_pipeline_matches_serial_across_replicas() {
    let model = Arc::new(nmt_model());
    let binding_shapes: HashMap<NodeId, Shape> = model
        .symbolic_bindings(NMT_LANES / NMT_MICRO)
        .iter()
        .map(|(&id, t)| (id, t.shape().clone()))
        .collect();
    let gir = Gir::from_graph(
        Arc::clone(&model.graph),
        &binding_shapes,
        &model.param_shapes(),
        &[model.loss],
    )
    .expect("gir");
    let partition = partition_stages(&gir, 2).expect("nmt partition");
    for (plan_name, plan) in nmt_plans(&model) {
        let canonical = serial_nmt_run(&model, &plan);
        let normalized = serial_nmt_run(&model, &partition.normalized_plan(&plan));
        assert_eq!(
            normalized.fps, canonical.fps,
            "{plan_name}: normalized NMT plan diverged serially"
        );
        if plan_name == "echo-on" {
            assert!(
                canonical.replays.iter().sum::<u64>() > 0,
                "echo NMT plan produced no replays"
            );
        }
        for replicas in [1usize, 2] {
            let bind_model = Arc::clone(&model);
            let cut_plan = MicrobatchPlan::new(NMT_LANES, NMT_MICRO).expect("plan");
            let mut trainer = PipelineTrainer::new(
                nmt_template(&model, &plan),
                &partition,
                &plan,
                NMT_LANES,
                &PipelineOptions::new(replicas, NMT_MICRO),
                Box::new(optimizer()),
                Arc::new(move |batch: &NmtBatch| bind_model.bindings(batch)),
                Arc::new(move |batch: &NmtBatch| cut_plan.cut_nmt(batch)),
                model.loss,
            )
            .expect("nmt pipeline trainer");
            for (step, batch) in nmt_batches().iter().enumerate() {
                let report = trainer.train_step(batch).expect("nmt pipeline step");
                assert_eq!(
                    (report.loss.to_bits(), report.grad_norm.to_bits()),
                    canonical.fps[step],
                    "{plan_name}: NMT step {step} diverged at K={replicas}"
                );
                assert_eq!(
                    report.total_replays(),
                    normalized.replays[step],
                    "{plan_name}: NMT K={replicas} replay count drifted"
                );
            }
            assert_eq!(
                param_bits(&trainer.export_params()),
                canonical.params,
                "{plan_name}: NMT K={replicas} final parameters diverged"
            );
        }
    }
}
