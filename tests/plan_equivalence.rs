//! Plan-driven execution must be indistinguishable from the legacy
//! interpreter — for every stash plan and every GEMM backend.
//!
//! The ahead-of-time `ExecPlan` (`echo_graph::plan`) precomputes the
//! schedule, shapes, liveness intervals and buffer slots, and the executor
//! interprets it instead of rebuilding per-run tables. This sweep pins the
//! contract from the ISSUE: across {stash-all, Echo, Chen-√N, searched}
//! stash plans and all `MatmulPolicy` backends, on both a tiny word-level LM and a
//! hand-built GRU chain, the planned path is **bit-identical** to legacy in
//! loss, every exported gradient, and replay counts — and the plan's static
//! `planned_peak_bytes` never exceeds the peak the legacy interpreter
//! actually touched. A second sweep adds the fusion axis: the pass-pipeline
//! rewritten word LM must stay bit-identical to its unfused twin across
//! {stash-all, Echo, searched} plans and every matmul policy.
//!
//! One `#[test]`, not several: the matmul policy is process-global state
//! and the harness runs `#[test]`s concurrently, so the sweep must iterate
//! policies sequentially inside a single test (this file is its own
//! integration-test binary, i.e. its own process).

use echo::{
    analysis::infer_shapes, chen_sqrt_plan, sqrt_stride, EchoCompiler, EchoConfig, OshapeConfig,
    SearchConfig, StashSearch,
};
use echo_data::{BpttBatches, LmCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, Graph, NodeId, StashPlan};
use echo_memory::{DeviceMemory, LayerKind};
use echo_models::{WordLm, WordLmHyper};
use echo_ops::MeanAll;
use echo_rnn::{GruStep, LstmBackend};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{set_matmul_policy, MatmulBackend, MatmulPolicy, Shape, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

const LANES: usize = 4;
const PARAM_SEED: u64 = 11;

/// One model under test: a graph, its scalar loss, deterministic parameter
/// values, and one batch of input bindings.
struct Scenario {
    name: &'static str,
    graph: Arc<Graph>,
    loss: NodeId,
    params: Vec<(NodeId, Tensor)>,
    bindings: HashMap<NodeId, Tensor>,
}

impl Scenario {
    fn param_shapes(&self) -> HashMap<NodeId, Shape> {
        self.params
            .iter()
            .map(|(id, t)| (*id, t.shape().clone()))
            .collect()
    }

    /// The four stash plans of the sweep: the framework baseline, the
    /// Echo pass's output, Chen et al.'s generic √N checkpointing, and the
    /// cost-model search's winner.
    fn stash_plans(&self) -> Vec<(&'static str, StashPlan)> {
        let shapes = infer_shapes(&self.graph, &self.bindings, &self.param_shapes())
            .expect("shape inference");
        let echo = EchoCompiler::new(EchoConfig::default())
            .compile_with_shapes(&self.graph, &shapes, &[self.loss])
            .plan;
        let (chen, _) = chen_sqrt_plan(&self.graph, &shapes, &[self.loss], {
            sqrt_stride(&self.graph)
        });
        let binding_shapes: HashMap<NodeId, Shape> = self
            .bindings
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        let searched = StashSearch::new(SearchConfig {
            flop_budget: 1.0,
            ..SearchConfig::default()
        })
        .run(
            &self.graph,
            &shapes,
            &binding_shapes,
            &self.param_shapes(),
            &[self.loss],
            &OshapeConfig::default(),
            true,
            ExecOptions::default(),
        )
        .expect("stash search")
        .plan;
        vec![
            ("stash-all", StashPlan::stash_all()),
            ("echo", echo),
            ("chen-sqrt-n", chen),
            ("searched", searched),
        ]
    }
}

fn word_lm_scenario() -> Scenario {
    word_lm_scenario_on("word-lm", LstmBackend::CuDnn)
}

fn word_lm_scenario_on(name: &'static str, backend: LstmBackend) -> Scenario {
    let lm = WordLm::build(WordLmHyper::tiny(30, backend));
    let corpus = LmCorpus::synthetic(Vocab::new(30), 1200, 0.85, 5);
    let batch = BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .next()
        .expect("corpus yields a batch");
    // Capture the seeded parameter values once so every run binds
    // identical bits.
    let mut probe = Executor::new(
        Arc::clone(&lm.graph),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(1 << 30, 0, 0.0),
    );
    lm.bind_params(&mut probe, PARAM_SEED).expect("bind");
    Scenario {
        name,
        graph: Arc::clone(&lm.graph),
        loss: lm.loss,
        params: probe.export_params(),
        bindings: lm.bindings(&batch),
    }
}

/// A 4-step GRU chain ending in a mean-reduce loss — the recurrent shape
/// the fused `GruStep` operator is built for, exercised here because the
/// LM scenario never touches it.
fn gru_scenario() -> Scenario {
    let (b, h, steps) = (3usize, 4usize, 4usize);
    let mut g = Graph::new();
    let h0 = g.input("h0", LayerKind::Rnn);
    let wx = g.param("wx", LayerKind::Rnn);
    let wh = g.param("wh", LayerKind::Rnn);
    let bias = g.param("bias", LayerKind::Rnn);
    let mut xs = Vec::new();
    let mut state = h0;
    for t in 0..steps {
        let x = g.input(format!("x{t}"), LayerKind::Rnn);
        xs.push(x);
        state = g.apply(
            format!("gru{t}"),
            Arc::new(GruStep::new(h)),
            &[x, state, wx, wh, bias],
            LayerKind::Rnn,
        );
    }
    let loss = g.apply("loss", Arc::new(MeanAll), &[state], LayerKind::Output);

    let mut rng = seeded_rng(PARAM_SEED);
    let params = vec![
        (wx, uniform(Shape::d2(3 * h, h), 0.6, &mut rng)),
        (wh, uniform(Shape::d2(3 * h, h), 0.6, &mut rng)),
        (bias, uniform(Shape::d1(6 * h), 0.2, &mut rng)),
    ];
    let mut bindings = HashMap::new();
    bindings.insert(h0, Tensor::zeros(Shape::d2(b, h)));
    for &x in &xs {
        bindings.insert(x, uniform(Shape::d2(b, h), 1.0, &mut rng));
    }
    Scenario {
        name: "gru",
        graph: Arc::new(g),
        loss,
        params,
        bindings,
    }
}

/// Everything observable from one train step, as bits.
struct Fingerprint {
    loss_bits: u32,
    grad_bits: Vec<(NodeId, Vec<u32>)>,
    replays: u64,
    peak_bytes: u64,
}

fn run_step(scenario: &Scenario, stash: &StashPlan, planned: bool) -> (Fingerprint, Option<u64>) {
    let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&scenario.graph), stash.clone(), mem);
    for (id, value) in &scenario.params {
        exec.bind_param(*id, value.clone()).expect("bind param");
    }
    let mut planned_peak = None;
    if planned {
        let plan = exec
            .plan_for(&scenario.bindings, scenario.loss, ExecOptions::default())
            .expect("plan builds");
        planned_peak = Some(plan.planned_peak_bytes());
        exec.set_exec_plan(plan).expect("plan installs");
    }
    let stats = exec
        .train_step(
            &scenario.bindings,
            scenario.loss,
            ExecOptions::default(),
            None,
        )
        .expect("train step");
    let grad_bits = exec
        .export_grads()
        .into_iter()
        .map(|(id, t)| (id, t.data().iter().map(|v| v.to_bits()).collect()))
        .collect();
    (
        Fingerprint {
            loss_bits: stats.loss.expect("numeric loss").to_bits(),
            grad_bits,
            replays: stats.replays,
            peak_bytes: stats.peak_bytes,
        },
        planned_peak,
    )
}

#[test]
fn planned_execution_is_bit_identical_across_plans_and_matmul_policies() {
    let scenarios = [word_lm_scenario(), gru_scenario()];
    let policies = [
        MatmulPolicy::Fixed(MatmulBackend::Naive),
        MatmulPolicy::Fixed(MatmulBackend::Blocked),
        MatmulPolicy::Fixed(MatmulBackend::PackedParallel),
        MatmulPolicy::Auto,
    ];
    for scenario in &scenarios {
        for (plan_name, stash) in scenario.stash_plans() {
            for &policy in &policies {
                set_matmul_policy(policy);
                let ctx = format!("{}/{plan_name}/{policy:?}", scenario.name);
                let (legacy, _) = run_step(scenario, &stash, false);
                let (planned, static_peak) = run_step(scenario, &stash, true);
                assert_eq!(planned.loss_bits, legacy.loss_bits, "loss bits ({ctx})");
                assert_eq!(planned.grad_bits, legacy.grad_bits, "gradient bits ({ctx})");
                assert_eq!(planned.replays, legacy.replays, "replay counts ({ctx})");
                let static_peak = static_peak.expect("planned run reports a static peak");
                assert!(
                    static_peak <= legacy.peak_bytes,
                    "planned_peak_bytes {static_peak} above legacy peak {} ({ctx})",
                    legacy.peak_bytes
                );
                assert!(
                    planned.peak_bytes <= legacy.peak_bytes,
                    "planned step peak {} above legacy peak {} ({ctx})",
                    planned.peak_bytes,
                    legacy.peak_bytes
                );
            }
        }
    }

    // Fusion sweep: {fusion on, fusion off} × {stash-all, Echo, searched}
    // × every matmul policy, on the word LM's `Default` backend — the
    // many-op cell graph the fusion passes actually rewrite. Within each
    // cell the planned path must match legacy bit-for-bit in loss,
    // gradients and replays; *across* the fusion axis loss and gradient
    // bits must be identical too, because the fusion admission rules only
    // absorb a producer where the gradient accumulation order is provably
    // preserved. Node ids survive the rewrite, so params and bindings
    // transfer unchanged. (Chen-√N stays in the main sweep above: its
    // stride heuristic is not meaningful on a fusion-rewritten graph.)
    let unfused = word_lm_scenario_on("word-lm-default", LstmBackend::Default);
    let compiled = EchoCompiler::new(EchoConfig {
        fusion: true,
        cse: true,
        ..EchoConfig::default()
    })
    .compile(
        &unfused.graph,
        &unfused.bindings,
        &unfused.param_shapes(),
        &[unfused.loss],
    )
    .expect("fused compile");
    let fused = Scenario {
        name: "word-lm-fused",
        graph: compiled
            .graph
            .clone()
            .expect("fusion rewrites the Default-backend word LM"),
        loss: unfused.loss,
        params: unfused.params.clone(),
        bindings: unfused.bindings.clone(),
    };
    let sweep_plans = |s: &Scenario| -> Vec<(&'static str, StashPlan)> {
        s.stash_plans()
            .into_iter()
            .filter(|(name, _)| *name != "chen-sqrt-n")
            .collect()
    };
    let unfused_plans = sweep_plans(&unfused);
    let fused_plans = sweep_plans(&fused);
    for ((plan_name, u_stash), (f_name, f_stash)) in unfused_plans.iter().zip(&fused_plans) {
        assert_eq!(
            plan_name, f_name,
            "plan sets aligned across the fusion axis"
        );
        for &policy in &policies {
            set_matmul_policy(policy);
            let ctx = format!("fusion-sweep/{plan_name}/{policy:?}");
            for (variant, scenario, stash) in
                [("unfused", &unfused, u_stash), ("fused", &fused, f_stash)]
            {
                let (legacy, _) = run_step(scenario, stash, false);
                let (planned, _) = run_step(scenario, stash, true);
                assert_eq!(
                    planned.loss_bits, legacy.loss_bits,
                    "loss bits ({ctx}/{variant})"
                );
                assert_eq!(
                    planned.grad_bits, legacy.grad_bits,
                    "gradient bits ({ctx}/{variant})"
                );
                assert_eq!(
                    planned.replays, legacy.replays,
                    "replay counts ({ctx}/{variant})"
                );
            }
            let (u_run, _) = run_step(&unfused, u_stash, true);
            let (f_run, _) = run_step(&fused, f_stash, true);
            assert_eq!(
                f_run.loss_bits, u_run.loss_bits,
                "fused loss bits diverge from unfused ({ctx})"
            );
            assert_eq!(
                f_run.grad_bits, u_run.grad_bits,
                "fused gradient bits diverge from unfused ({ctx})"
            );
        }
    }
    set_matmul_policy(MatmulPolicy::Auto);
}
