//! Wavefront-parallel plan execution must be indistinguishable from the
//! serial planned interpreter — for every stash plan, at every thread
//! count.
//!
//! The wavefront scheduler (`echo_graph::exec`) groups an `ExecPlan`'s
//! forward and backward schedules into dependency levels and runs each
//! level's entries concurrently on a worker pool, committing results
//! serially in schedule order. That commit discipline — plus the fixed
//! per-element reduction order of every tensor kernel — is the whole
//! bit-exactness argument, so this sweep pins it end to end: across
//! {stash-all, Echo, Chen-√N, searched} stash plans on a word-level LM
//! and a fused-GRU chain, wavefront execution over pools of 1, 2 and 4
//! threads produces bit-identical losses, bit-identical exported
//! gradients and identical replay counts to `WavefrontMode::Off`.
//!
//! One `#[test]`: the scenarios share process-global tensor state (the
//! GEMM policy/kernel pins), and a single test keeps the sweep ordered.

use echo::{
    analysis::infer_shapes, chen_sqrt_plan, sqrt_stride, EchoCompiler, EchoConfig, OshapeConfig,
    SearchConfig, StashSearch,
};
use echo_data::{BpttBatches, LmCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, Graph, NodeId, StashPlan, WavefrontMode};
use echo_memory::{DeviceMemory, LayerKind};
use echo_models::{WordLm, WordLmHyper};
use echo_ops::MeanAll;
use echo_rnn::{GruStep, LstmBackend};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{Shape, Tensor, WorkerPool};
use std::collections::HashMap;
use std::sync::Arc;

const LANES: usize = 4;
const PARAM_SEED: u64 = 23;

struct Scenario {
    name: &'static str,
    graph: Arc<Graph>,
    loss: NodeId,
    params: Vec<(NodeId, Tensor)>,
    bindings: HashMap<NodeId, Tensor>,
}

impl Scenario {
    fn param_shapes(&self) -> HashMap<NodeId, Shape> {
        self.params
            .iter()
            .map(|(id, t)| (*id, t.shape().clone()))
            .collect()
    }

    fn stash_plans(&self) -> Vec<(&'static str, StashPlan)> {
        let shapes = infer_shapes(&self.graph, &self.bindings, &self.param_shapes())
            .expect("shape inference");
        let echo = EchoCompiler::new(EchoConfig::default())
            .compile_with_shapes(&self.graph, &shapes, &[self.loss])
            .plan;
        let (chen, _) = chen_sqrt_plan(&self.graph, &shapes, &[self.loss], {
            sqrt_stride(&self.graph)
        });
        let binding_shapes: HashMap<NodeId, Shape> = self
            .bindings
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        let searched = StashSearch::new(SearchConfig {
            flop_budget: 1.0,
            ..SearchConfig::default()
        })
        .run(
            &self.graph,
            &shapes,
            &binding_shapes,
            &self.param_shapes(),
            &[self.loss],
            &OshapeConfig::default(),
            true,
            ExecOptions::default(),
        )
        .expect("stash search")
        .plan;
        vec![
            ("stash-all", StashPlan::stash_all()),
            ("echo", echo),
            ("chen-sqrt-n", chen),
            ("searched", searched),
        ]
    }
}

fn word_lm_scenario() -> Scenario {
    let lm = WordLm::build(WordLmHyper::tiny(30, LstmBackend::CuDnn));
    let corpus = LmCorpus::synthetic(Vocab::new(30), 1200, 0.85, 5);
    let batch = BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .next()
        .expect("corpus yields a batch");
    let mut probe = Executor::new(
        Arc::clone(&lm.graph),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(1 << 30, 0, 0.0),
    );
    lm.bind_params(&mut probe, PARAM_SEED).expect("bind");
    Scenario {
        name: "word-lm",
        graph: Arc::clone(&lm.graph),
        loss: lm.loss,
        params: probe.export_params(),
        bindings: lm.bindings(&batch),
    }
}

/// A 4-step fused-GRU chain: recurrent serial dependencies plus several
/// independent per-step input transforms — enough graph width that the
/// wave tables actually group work, unlike a pure chain.
fn gru_scenario() -> Scenario {
    let (b, h, steps) = (3usize, 4usize, 4usize);
    let mut g = Graph::new();
    let h0 = g.input("h0", LayerKind::Rnn);
    let wx = g.param("wx", LayerKind::Rnn);
    let wh = g.param("wh", LayerKind::Rnn);
    let bias = g.param("bias", LayerKind::Rnn);
    let mut xs = Vec::new();
    let mut state = h0;
    for t in 0..steps {
        let x = g.input(format!("x{t}"), LayerKind::Rnn);
        xs.push(x);
        state = g.apply(
            format!("gru{t}"),
            Arc::new(GruStep::new(h)),
            &[x, state, wx, wh, bias],
            LayerKind::Rnn,
        );
    }
    let loss = g.apply("loss", Arc::new(MeanAll), &[state], LayerKind::Output);

    let mut rng = seeded_rng(PARAM_SEED);
    let params = vec![
        (wx, uniform(Shape::d2(3 * h, h), 0.6, &mut rng)),
        (wh, uniform(Shape::d2(3 * h, h), 0.6, &mut rng)),
        (bias, uniform(Shape::d1(6 * h), 0.2, &mut rng)),
    ];
    let mut bindings = HashMap::new();
    bindings.insert(h0, Tensor::zeros(Shape::d2(b, h)));
    for &x in &xs {
        bindings.insert(x, uniform(Shape::d2(b, h), 1.0, &mut rng));
    }
    Scenario {
        name: "gru",
        graph: Arc::new(g),
        loss,
        params,
        bindings,
    }
}

struct Fingerprint {
    loss_bits: u32,
    grad_bits: Vec<(NodeId, Vec<u32>)>,
    replays: u64,
}

/// One planned train step under the given wavefront mode. Two steps are
/// run back to back and both fingerprinted: the second step reuses the
/// step-persistent tensor pool, so it covers the recycled-storage path
/// the first step cannot.
fn run_steps(scenario: &Scenario, stash: &StashPlan, mode: WavefrontMode) -> Vec<Fingerprint> {
    let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&scenario.graph), stash.clone(), mem);
    for (id, value) in &scenario.params {
        exec.bind_param(*id, value.clone()).expect("bind param");
    }
    let plan = exec
        .plan_for(&scenario.bindings, scenario.loss, ExecOptions::default())
        .expect("plan builds");
    exec.set_exec_plan(plan).expect("plan installs");
    exec.set_wavefront_mode(mode);
    (0..2)
        .map(|_| {
            let stats = exec
                .train_step(
                    &scenario.bindings,
                    scenario.loss,
                    ExecOptions::default(),
                    None,
                )
                .expect("train step");
            Fingerprint {
                loss_bits: stats.loss.expect("numeric loss").to_bits(),
                grad_bits: exec
                    .export_grads()
                    .into_iter()
                    .map(|(id, t)| (id, t.data().iter().map(|v| v.to_bits()).collect()))
                    .collect(),
                replays: stats.replays,
            }
        })
        .collect()
}

#[test]
fn wavefront_execution_is_bit_identical_at_every_thread_count() {
    let pools: Vec<(usize, Arc<WorkerPool>)> = [1usize, 2, 4]
        .into_iter()
        .map(|t| (t, Arc::new(WorkerPool::with_threads(t))))
        .collect();
    let scenarios = [word_lm_scenario(), gru_scenario()];
    for scenario in &scenarios {
        for (plan_name, stash) in scenario.stash_plans() {
            let serial = run_steps(scenario, &stash, WavefrontMode::Off);
            for (threads, pool) in &pools {
                let waved = run_steps(scenario, &stash, WavefrontMode::Pool(Arc::clone(pool)));
                for (step, (s, wv)) in serial.iter().zip(&waved).enumerate() {
                    let ctx = format!("{}/{plan_name}/{threads}t/step{step}", scenario.name);
                    assert_eq!(wv.loss_bits, s.loss_bits, "loss bits ({ctx})");
                    assert_eq!(wv.grad_bits, s.grad_bits, "gradient bits ({ctx})");
                    assert_eq!(wv.replays, s.replays, "replay counts ({ctx})");
                }
            }
        }
    }
}
